(** Garbled circuits: half-gates garbling with free-XOR and
    point-and-permute (Zahur–Rosulek–Evans), over 128-bit wire labels.

    This is the [Real] backend of the GC protocol: circuits are actually
    garbled by the generator and evaluated on labels by the evaluator. Each
    AND gate costs two 128-bit ciphertexts; XOR and NOT are free.

    Two key-derivation functions are supported: fixed-key AES-128 (the
    default — the standard choice in MPC practice) and SHA-256.

    The garble/eval inner loops are {e allocation-free} (under the AES
    KDF): wire labels, half-gate tables, and output decode bits live in
    [Bytes] planes accessed through unaligned native [int64] loads and
    stores, so no per-gate value is ever boxed — unlike [int64 array],
    whose every element store allocates a 3-word box on the minor heap
    (see DESIGN.md §14). Planes come either from fresh per-call buffers
    (the safe default) or from a per-domain {!Arena} reused across batch
    items. The boxed {!Label} module remains the representation at the
    protocol boundary (input encoding, output labels).

    {!Garbling_reference} preserves the pre-arena boxed implementation;
    the test suite asserts both paths are bit-identical and the bench
    harness uses it as the allocation baseline. *)

module Label = struct
  type t = { hi : int64; lo : int64 }

  let zero = { hi = 0L; lo = 0L }
  let xor a b = { hi = Int64.logxor a.hi b.hi; lo = Int64.logxor a.lo b.lo }
  let color t = Int64.logand t.lo 1L = 1L
  let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

  let random prg = { hi = Prg.next_int64 prg; lo = Prg.next_int64 prg }

  (** Free-XOR global offset; color bit forced to 1 so that the two labels
      of every wire have opposite colors. *)
  let random_delta prg =
    let l = random prg in
    { l with lo = Int64.logor l.lo 1L }

  (** H(label, tweak): first 128 bits of SHA-256(hi || lo || tweak). *)
  let hash t ~tweak =
    let d = Sha256.digest_int64s [ t.hi; t.lo; tweak ] in
    { hi = Bytes.get_int64_be d 0; lo = Bytes.get_int64_be d 8 }

  (** Fixed-key AES hash (faster; the standard choice in MPC practice). *)
  let hash_aes t ~tweak =
    let hi, lo = Aes128.label_hash ~tweak (t.hi, t.lo) in
    { hi; lo }

  let cond_xor cond a b = if cond then xor a b else a
end

(** Key-derivation function used for garbled rows. *)
type kdf = Sha256_kdf | Aes128_kdf

let hash_with kdf =
  match kdf with Sha256_kdf -> Label.hash | Aes128_kdf -> Label.hash_aes

(* Unaligned native-endian int64 access into the label planes. The layout
   convention everywhere below: wire [w]'s false (resp. active) label
   lives at byte offset [16 * w], [hi] first, [lo] at [+ 8]; AND gate
   [k]'s ciphertexts live at [32 * k] as T_G.hi, T_G.lo, T_E.hi, T_E.lo.
   Endianness never escapes: labels are written and read through the
   same primitives, so the int64 values round-trip bit-identically on
   any platform. *)
external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* The plane-level hash: dst.(doff, doff+16) <- H(src.(soff, soff+16),
   tweak). The AES branch is Aes128.label_hash_bytes under the
   pre-expanded fixed schedule — fully unboxed, zero allocation per
   call. The SHA branch allocates its digest (SHA-256 is the legacy KDF,
   kept for differential coverage, not throughput). *)
let bytes_hash kdf : tweak:int -> Bytes.t -> int -> Bytes.t -> int -> unit =
  match kdf with
  | Aes128_kdf ->
      let sched = Aes128.fixed_key in
      fun ~tweak src soff dst doff -> Aes128.label_hash_bytes sched ~tweak src soff dst doff
  | Sha256_kdf ->
      fun ~tweak src soff dst doff ->
        let d =
          Sha256.digest_int64s
            [ get64u src soff; get64u src (soff + 8); Int64.of_int tweak ]
        in
        set64u dst doff (Bytes.get_int64_be d 0);
        set64u dst (doff + 8) (Bytes.get_int64_be d 8)

(** Per-domain scratch arena: every plane the garble/eval hot paths touch,
    grown geometrically and reused across batch items, so steady-state
    garbling performs no plane allocation at all. Each domain owns its
    arena through [Domain.DLS] — pool workers never share one, which is
    what makes reuse safe without locks (DESIGN.md §14). *)
module Arena = struct
  type t = {
    mutable wires_g : Bytes.t;  (** generator false-label planes, 16 B per wire *)
    mutable wires_e : Bytes.t;  (** evaluator active-label planes, 16 B per wire *)
    mutable tables : Bytes.t;   (** half-gate ciphertexts, 32 B per AND gate *)
    mutable decode : Bytes.t;   (** 1 B per output: color of the false label *)
    mutable colors : Bytes.t;   (** 1 B per output: color of the active label *)
    scratch : Bytes.t;
        (** 48 B: one shifted label at 0, two hash outputs at 16 and 32 *)
  }

  let m_grows =
    lazy
      (Secyan_metrics.counter ~help:"arena plane growth events (steady state: none)"
         "secyan_arena_grows_total")

  let m_bytes =
    lazy
      (Secyan_metrics.counter ~help:"bytes added to arena planes by growth"
         "secyan_arena_grow_bytes_total")

  let create () =
    {
      wires_g = Bytes.create 0;
      wires_e = Bytes.create 0;
      tables = Bytes.create 0;
      decode = Bytes.create 0;
      colors = Bytes.create 0;
      scratch = Bytes.create 48;
    }

  let key = Domain.DLS.new_key create

  (** The calling domain's arena (one per domain, created on first use).
      Buffers handed out against it stay valid until the same domain
      garbles/evaluates again — exactly the per-item lifetime of the
      batch engine. *)
  let current () = Domain.DLS.get key

  (* Geometric growth, never shrinking: a steady stream of same-shaped
     circuits settles after the first item and allocates nothing. *)
  let grown cur need =
    if Bytes.length cur >= need then cur
    else begin
      let cap = max need (max 64 (2 * Bytes.length cur)) in
      if Secyan_metrics.enabled () then begin
        Secyan_metrics.add (Lazy.force m_grows) 1;
        Secyan_metrics.add (Lazy.force m_bytes) (cap - Bytes.length cur)
      end;
      Bytes.create cap
    end

  let prepare_garble a ~n_wires ~n_ands ~n_outputs =
    a.wires_g <- grown a.wires_g (16 * n_wires);
    a.tables <- grown a.tables (32 * n_ands);
    a.decode <- grown a.decode (max 1 n_outputs)

  let prepare_eval a ~n_wires ~n_outputs =
    a.wires_e <- grown a.wires_e (16 * n_wires);
    a.colors <- grown a.colors (max 1 n_outputs)

  let m_resets =
    lazy
      (Secyan_metrics.counter
         ~help:"arena planes dropped after a faulted batch item"
         "secyan_arena_resets_total")

  (* Drop every plane back to empty. After an item raises mid-garble the
     planes hold a half-written circuit; any [garbled] value aliasing
     them is poison. Resetting forces the next item on this domain to
     regrow fresh planes — dirty label material is never reused
     (DESIGN.md §15 arena-reset rule). Costs one regrowth cycle, only
     ever paid after a fault. *)
  let reset a =
    Secyan_metrics.add (Lazy.force m_resets) 1;
    a.wires_g <- Bytes.create 0;
    a.wires_e <- Bytes.create 0;
    a.tables <- Bytes.create 0;
    a.decode <- Bytes.create 0;
    a.colors <- Bytes.create 0;
    Bytes.fill a.scratch 0 (Bytes.length a.scratch) '\000'
end

type garbled = {
  circuit : Boolean_circuit.t;
  wires : Bytes.t;
      (** false-label [hi]/[lo] planes of {e every} wire (16 B each); the
          input labels are the prefix — no copy is ever taken *)
  delta_hi : int64;
  delta_lo : int64;
  tables : Bytes.t;  (** T_G/T_E ciphertexts, 32 B per AND gate in gate order *)
  decode : Bytes.t;  (** 1 B per output: 1 iff the false label has color 1 *)
}

(* Garbling throughput histograms. Half-gates hashes 4 labels per AND
   gate (two per half gate), so labels/s ~ 4 x gates / elapsed; the
   per-circuit gate count doubles as a circuit-size profile. *)
let m_garble_gates =
  lazy
    (Secyan_metrics.histogram ~help:"AND gates per garbled circuit"
       "secyan_garble_and_gates")

let m_garble_labels_per_s =
  lazy
    (Secyan_metrics.histogram ~help:"label hashes per second while garbling (4 per AND gate)"
       "secyan_garble_labels_per_s")

(** Garble [circuit] with randomness from [prg] (the generator's stream).
    With [?arena] the result's planes alias the arena and stay valid only
    until the next garble on the same arena (the batch engine's per-item
    lifetime); without it the result owns freshly allocated, exactly
    sized planes. The inner loop allocates nothing either way (AES
    KDF). *)
let garble ?(kdf = Aes128_kdf) ?arena prg circuit =
  let open Boolean_circuit in
  let t_start = if Secyan_metrics.enabled () then Unix.gettimeofday () else 0. in
  let hash = bytes_hash kdf in
  (* Draw order matches Label.random_delta / Label.random: hi then lo. *)
  let delta_hi = Prg.next_int64 prg in
  let delta_lo = Int64.logor (Prg.next_int64 prg) 1L in
  let n_wires = n_wires circuit in
  let n_outputs = Array.length circuit.outputs in
  let wires, tables, decode, scratch =
    match arena with
    | Some a ->
        Arena.prepare_garble a ~n_wires ~n_ands:circuit.and_count ~n_outputs;
        (a.Arena.wires_g, a.Arena.tables, a.Arena.decode, a.Arena.scratch)
    | None ->
        ( Bytes.create (16 * n_wires),
          Bytes.create (32 * circuit.and_count),
          Bytes.create (max 1 n_outputs),
          Bytes.create 48 )
  in
  for i = 0 to circuit.n_inputs - 1 do
    set64u wires (16 * i) (Prg.next_int64 prg);
    set64u wires ((16 * i) + 8) (Prg.next_int64 prg)
  done;
  let and_idx = ref 0 in
  Array.iteri
    (fun i gate ->
      let out = 16 * (circuit.n_inputs + i) in
      match gate with
      | Xor (x, y) ->
          set64u wires out (Int64.logxor (get64u wires (16 * x)) (get64u wires (16 * y)));
          set64u wires (out + 8)
            (Int64.logxor (get64u wires ((16 * x) + 8)) (get64u wires ((16 * y) + 8)))
      | Not x ->
          set64u wires out (Int64.logxor (get64u wires (16 * x)) delta_hi);
          set64u wires (out + 8) (Int64.logxor (get64u wires ((16 * x) + 8)) delta_lo)
      | And (x, y) ->
          let k = !and_idx in
          let j = 2 * k in
          let j' = (2 * k) + 1 in
          let ax = 16 * x and by = 16 * y in
          let wa0_hi = get64u wires ax and wa0_lo = get64u wires (ax + 8) in
          let wb0_hi = get64u wires by and wb0_lo = get64u wires (by + 8) in
          let pa = Int64.to_int wa0_lo land 1 = 1 in
          let pb = Int64.to_int wb0_lo land 1 = 1 in
          (* generator half-gate: ha0 = H(j, wa0), ha1 = H(j, wa0 ^ delta) *)
          hash ~tweak:j wires ax scratch 16;
          set64u scratch 0 (Int64.logxor wa0_hi delta_hi);
          set64u scratch 8 (Int64.logxor wa0_lo delta_lo);
          hash ~tweak:j scratch 0 scratch 32;
          let ha0_hi = get64u scratch 16 and ha0_lo = get64u scratch 24 in
          let ha1_hi = get64u scratch 32 and ha1_lo = get64u scratch 40 in
          let tg_hi = Int64.logxor ha0_hi ha1_hi and tg_lo = Int64.logxor ha0_lo ha1_lo in
          let tg_hi = if pb then Int64.logxor tg_hi delta_hi else tg_hi in
          let tg_lo = if pb then Int64.logxor tg_lo delta_lo else tg_lo in
          let wg0_hi = if pa then Int64.logxor ha0_hi tg_hi else ha0_hi in
          let wg0_lo = if pa then Int64.logxor ha0_lo tg_lo else ha0_lo in
          (* evaluator half-gate: hb0 = H(j', wb0), hb1 = H(j', wb0 ^ delta) *)
          hash ~tweak:j' wires by scratch 16;
          set64u scratch 0 (Int64.logxor wb0_hi delta_hi);
          set64u scratch 8 (Int64.logxor wb0_lo delta_lo);
          hash ~tweak:j' scratch 0 scratch 32;
          let hb0_hi = get64u scratch 16 and hb0_lo = get64u scratch 24 in
          let hb1_hi = get64u scratch 32 and hb1_lo = get64u scratch 40 in
          let te_hi = Int64.logxor (Int64.logxor hb0_hi hb1_hi) wa0_hi in
          let te_lo = Int64.logxor (Int64.logxor hb0_lo hb1_lo) wa0_lo in
          let we0_hi = if pb then Int64.logxor hb0_hi (Int64.logxor te_hi wa0_hi) else hb0_hi in
          let we0_lo = if pb then Int64.logxor hb0_lo (Int64.logxor te_lo wa0_lo) else hb0_lo in
          set64u wires out (Int64.logxor wg0_hi we0_hi);
          set64u wires (out + 8) (Int64.logxor wg0_lo we0_lo);
          let tk = 32 * k in
          set64u tables tk tg_hi;
          set64u tables (tk + 8) tg_lo;
          set64u tables (tk + 16) te_hi;
          set64u tables (tk + 24) te_lo;
          incr and_idx)
    circuit.gates;
  Array.iteri
    (fun oi w ->
      Bytes.unsafe_set decode oi
        (if Int64.to_int (get64u wires ((16 * w) + 8)) land 1 = 1 then '\001' else '\000'))
    circuit.outputs;
  if Secyan_metrics.enabled () then begin
    let dt = Unix.gettimeofday () -. t_start in
    Secyan_metrics.observe (Lazy.force m_garble_gates) (float_of_int circuit.and_count);
    if dt > 0. then
      Secyan_metrics.observe (Lazy.force m_garble_labels_per_s)
        (4. *. float_of_int circuit.and_count /. dt)
  end;
  { circuit; wires; delta_hi; delta_lo; tables; decode }

(** The color (Boolean share) of output [out_index]'s false label — the
    generator's side of the Yao sharing. *)
let decode_bit g out_index = Bytes.get g.decode out_index = '\001'

(** The label encoding bit [b] on input wire [i]. *)
let encode_input g i b =
  let hi = get64u g.wires (16 * i) and lo = get64u g.wires ((16 * i) + 8) in
  if b then { Label.hi = Int64.logxor hi g.delta_hi; lo = Int64.logxor lo g.delta_lo }
  else { Label.hi; lo }

(* Half-gates evaluation over a preloaded active-label plane: wires 0 ..
   n_inputs-1 must already hold the active input labels. Shares the plane
   layout (and the zero-allocation property) with [garble]. *)
let eval_plane hash g (wires : Bytes.t) (scratch : Bytes.t) =
  let open Boolean_circuit in
  let circuit = g.circuit in
  let tables = g.tables in
  let and_idx = ref 0 in
  Array.iteri
    (fun i gate ->
      let out = 16 * (circuit.n_inputs + i) in
      match gate with
      | Xor (x, y) ->
          set64u wires out (Int64.logxor (get64u wires (16 * x)) (get64u wires (16 * y)));
          set64u wires (out + 8)
            (Int64.logxor (get64u wires ((16 * x) + 8)) (get64u wires ((16 * y) + 8)))
      | Not x ->
          (* NOT is free: same label, decoded with flipped semantics via
             the garbler's false-label offset (handled in [garble]). *)
          set64u wires out (get64u wires (16 * x));
          set64u wires (out + 8) (get64u wires ((16 * x) + 8))
      | And (x, y) ->
          let k = !and_idx in
          let j = 2 * k in
          let j' = (2 * k) + 1 in
          let ax = 16 * x and by = 16 * y in
          let wa_hi = get64u wires ax and wa_lo = get64u wires (ax + 8) in
          let sa = Int64.to_int wa_lo land 1 = 1 in
          let sb = Int64.to_int (get64u wires (by + 8)) land 1 = 1 in
          let tk = 32 * k in
          hash ~tweak:j wires ax scratch 16;
          let ha_hi = get64u scratch 16 and ha_lo = get64u scratch 24 in
          let wg_hi = if sa then Int64.logxor ha_hi (get64u tables tk) else ha_hi in
          let wg_lo = if sa then Int64.logxor ha_lo (get64u tables (tk + 8)) else ha_lo in
          hash ~tweak:j' wires by scratch 16;
          let hb_hi = get64u scratch 16 and hb_lo = get64u scratch 24 in
          let we_hi =
            if sb then Int64.logxor hb_hi (Int64.logxor (get64u tables (tk + 16)) wa_hi)
            else hb_hi
          in
          let we_lo =
            if sb then Int64.logxor hb_lo (Int64.logxor (get64u tables (tk + 24)) wa_lo)
            else hb_lo
          in
          set64u wires out (Int64.logxor wg_hi we_hi);
          set64u wires (out + 8) (Int64.logxor wg_lo we_lo);
          incr and_idx)
    circuit.gates

(** Evaluate on active labels; returns the active label of each output.
    [kdf] must match the one used at garbling time. With [?arena] the
    evaluator wire plane comes from (and the call leaves state in) the
    arena; the returned labels are fresh boxed values either way. *)
let eval_labels ?(kdf = Aes128_kdf) ?arena g (input_labels : Label.t array) =
  let circuit = g.circuit in
  if Array.length input_labels <> circuit.Boolean_circuit.n_inputs then
    invalid_arg
      (Printf.sprintf "Garbling.eval_labels: %d input labels for a circuit with %d inputs"
         (Array.length input_labels) circuit.Boolean_circuit.n_inputs);
  let n_wires = Boolean_circuit.n_wires circuit in
  let n_outputs = Array.length circuit.Boolean_circuit.outputs in
  let wires, scratch =
    match arena with
    | Some a ->
        Arena.prepare_eval a ~n_wires ~n_outputs;
        (a.Arena.wires_e, a.Arena.scratch)
    | None -> (Bytes.create (16 * n_wires), Bytes.create 48)
  in
  Array.iteri
    (fun i (l : Label.t) ->
      set64u wires (16 * i) l.Label.hi;
      set64u wires ((16 * i) + 8) l.Label.lo)
    input_labels;
  eval_plane (bytes_hash kdf) g wires scratch;
  Array.map
    (fun w -> { Label.hi = get64u wires (16 * w); lo = get64u wires ((16 * w) + 8) })
    circuit.Boolean_circuit.outputs

(** The batch hot path: select each input's active label from the garbled
    planes by its cleartext bit (what the evaluator would hold after OT),
    evaluate, and return the active color of every output as one byte
    each ([1] = color set) in the arena's color plane — valid until the
    next eval on the same arena. No boxed label is created anywhere:
    together with [garble ~arena] this runs a whole item without a
    single per-gate or per-wire heap allocation (AES KDF). *)
let eval_colors ?(kdf = Aes128_kdf) ~arena g (bit : int -> bool) : Bytes.t =
  let circuit = g.circuit in
  let n_wires = Boolean_circuit.n_wires circuit in
  let n_outputs = Array.length circuit.Boolean_circuit.outputs in
  Arena.prepare_eval arena ~n_wires ~n_outputs;
  let wires = arena.Arena.wires_e in
  for i = 0 to circuit.Boolean_circuit.n_inputs - 1 do
    let hi = get64u g.wires (16 * i) and lo = get64u g.wires ((16 * i) + 8) in
    if bit i then begin
      set64u wires (16 * i) (Int64.logxor hi g.delta_hi);
      set64u wires ((16 * i) + 8) (Int64.logxor lo g.delta_lo)
    end
    else begin
      set64u wires (16 * i) hi;
      set64u wires ((16 * i) + 8) lo
    end
  done;
  eval_plane (bytes_hash kdf) g wires arena.Arena.scratch;
  let colors = arena.Arena.colors in
  Array.iteri
    (fun oi w ->
      Bytes.unsafe_set colors oi
        (if Int64.to_int (get64u wires ((16 * w) + 8)) land 1 = 1 then '\001' else '\000'))
    circuit.Boolean_circuit.outputs;
  colors

(** Decode an output's active label to its cleartext bit using the decode
    (color-of-false-label) information. *)
let decode_output g ~out_index label = Label.color label <> decode_bit g out_index
