(** Oblivious extended permutation (paper §5.4, Mohassel–Sadeghian).

    One party (the programmer) holds an extended permutation
    xi : [N] -> [M]; the other holds (or the two share) a length-M vector.
    The protocol outputs a fresh sharing of the length-N vector
    y_i = x_{xi(i)} revealing neither xi nor the data.

    Construction (MS13): permutation network + duplication chain +
    permutation network. We build and program real Benes networks plus the
    duplication layer, so switch counts — and hence the accounted
    O((M+N) log(M+N)) communication — are exact. The oblivious evaluation
    of each switch is realized through the dealer model (one OT carrying
    the two masked outputs per switch; see DESIGN.md §2.5), so the output
    shares are uniformly fresh. *)

type program = {
  n_sources : int;
  n_outputs : int;
  perm1 : Permutation_network.t;
  dup_ctrl : bool array;   (** duplication-chain controls over the first N wires *)
  perm2 : Permutation_network.t;
}

(** Program the networks for [xi] ([xi.(i)] in [0, m)). Works over
    P = m + n physical wires so sources, copies, and fillers all fit. *)
let program ~m xi =
  let n = Array.length xi in
  Array.iteri
    (fun i s ->
      if s < 0 || s >= m then
        invalid_arg
          (Printf.sprintf "Oep.program: xi.(%d) = %d outside the source range [0, %d)" i s m))
    xi;
  let p = m + n in
  (* Sort output indices by source (stable) so copies are adjacent. *)
  let order = Array.init n (fun i -> i) in
  Array.stable_sort (fun i j -> compare xi.(i) xi.(j)) order;
  (* perm1: dest position k takes, for first occurrences, the wire carrying
     source xi.(order.(k)); other positions take distinct filler wires. *)
  let perm1 = Array.make p (-1) in
  let used_source = Array.make m false in
  let dup_ctrl = Array.make n false in
  for k = 0 to n - 1 do
    let s = xi.(order.(k)) in
    let first = (k = 0) || xi.(order.(k - 1)) <> s in
    dup_ctrl.(k) <- not first;
    if first then begin
      perm1.(k) <- s;
      used_source.(s) <- true
    end
  done;
  (* Fillers: sources never used, plus the n padding wires m..p-1. *)
  let fillers = ref [] in
  for s = m - 1 downto 0 do
    if not used_source.(s) then fillers := s :: !fillers
  done;
  for w = m to p - 1 do
    fillers := w :: !fillers
  done;
  let fillers = ref !fillers in
  let next_filler () =
    match !fillers with
    | f :: rest ->
        fillers := rest;
        f
    (* unreachable counting invariant: over p = m + n wires, the number of
       unused sources plus padding wires equals the number of unassigned
       perm1 slots, so the filler pool cannot run dry *)
    | [] -> assert false
  in
  for k = 0 to p - 1 do
    if perm1.(k) = -1 then perm1.(k) <- next_filler ()
  done;
  (* perm2: output i must receive the copy sitting at sorted position
     inverse_order(i); positions n..p-1 map to leftovers. *)
  let perm2 = Array.make p (-1) in
  let taken = Array.make p false in
  Array.iteri
    (fun k i ->
      perm2.(i) <- k;
      taken.(k) <- true)
    order;
  let spare = ref [] in
  for k = p - 1 downto 0 do
    if not taken.(k) then spare := k :: !spare
  done;
  let spare = ref !spare in
  for i = 0 to p - 1 do
    if perm2.(i) = -1 then begin
      match !spare with
      | s :: rest ->
          perm2.(i) <- s;
          spare := rest
      (* unreachable counting invariant: [order] marks exactly |order|
         positions taken, leaving p - |order| spares for the p - |order|
         outputs with perm2.(i) = -1 *)
      | [] -> assert false
    end
  done;
  {
    n_sources = m;
    n_outputs = n;
    perm1 = Permutation_network.build perm1;
    dup_ctrl;
    perm2 = Permutation_network.build perm2;
  }

let n_switches prog =
  Permutation_network.n_switches prog.perm1
  + Array.length prog.dup_ctrl
  + Permutation_network.n_switches prog.perm2

(** Reference clear-data evaluation of the programmed networks; used by
    tests to check that [program] really realizes xi. *)
let apply_clear prog (data : 'a array) : 'a array =
  let p = prog.n_sources + prog.n_outputs in
  let padded = Array.init p (fun i -> if i < Array.length data then Some data.(i) else None) in
  let after1 = Permutation_network.apply prog.perm1 padded in
  let work = Array.copy after1 in
  for k = 0 to prog.n_outputs - 1 do
    if prog.dup_ctrl.(k) then work.(k) <- work.(k - 1)
  done;
  let after2 = Permutation_network.apply prog.perm2 work in
  Array.init prog.n_outputs (fun i ->
      match after2.(i) with
      | Some v -> v
      | None -> invalid_arg "Oep.apply_clear: filler wire reached an output")

let account ctx prog =
  let bits_per_switch =
    Cost_model.oep_switch_bits ~kappa:ctx.Context.kappa ~bits:(Context.ring_bits ctx)
  in
  Context.bump ctx Trace_sink.Oep_switches (n_switches prog);
  let total = n_switches prog * bits_per_switch in
  (* OT per switch: receiver column one way, masked pair the other. *)
  Comm.send ctx.Context.comm ~from:Party.Alice ~bits:(total / 2);
  Comm.send ctx.Context.comm ~from:Party.Bob ~bits:(total - (total / 2));
  Comm.bump_rounds ctx.Context.comm 2

(** Obliviously map a shared vector through [xi] held by [holder]:
    returns fresh shares of [x_{xi(i)}]. *)
let apply_shared ctx ~holder ~xi ~m (values : Secret_share.t array) : Secret_share.t array =
  ignore (holder : Party.t);
  if Array.length values <> m then
    invalid_arg
      (Printf.sprintf "Oep.apply_shared: %d input shares, expected m = %d"
         (Array.length values) m);
  Context.with_span ctx "oep:shared" @@ fun () ->
  let prog = program ~m xi in
  account ctx prog;
  Array.map
    (fun src ->
      let v = Secret_share.reconstruct ctx values.(src) in
      Secret_share.fresh_of_value ctx v)
    xi

(** Variant of §5.4's base case: the data vector is held in clear by
    [data_holder] (e.g. Bob's payload list); output is shared. *)
let apply_clear_input ctx ~holder ~xi ~m (values : int64 array) : Secret_share.t array =
  ignore (holder : Party.t);
  if Array.length values <> m then
    invalid_arg
      (Printf.sprintf "Oep.apply_clear_input: %d input values, expected m = %d"
         (Array.length values) m);
  Context.with_span ctx "oep:clear" @@ fun () ->
  let prog = program ~m xi in
  account ctx prog;
  Array.map (fun src -> Secret_share.fresh_of_value ctx values.(src)) xi
