(** Word-level circuit constructions on top of {!Boolean_circuit.Builder}.

    A word is a [value array], least-significant bit first. All arithmetic
    is modulo 2^(word length), matching the annotation ring. Gate-count
    notes refer to AND gates only (XOR/NOT are free under free-XOR):
    ripple-carry add/sub cost ~n, multiplication ~n^2, comparison ~n,
    restoring division ~3n^2. *)

open Boolean_circuit.Builder

type word = Boolean_circuit.Builder.value array

let width (w : word) = Array.length w

let input_word b n : word = inputs b n

let const_word ~bits v : word =
  Array.init bits (fun i -> const_ (Int64.logand (Int64.shift_right_logical v i) 1L = 1L))

let bool_array_of_int64 ~bits v =
  Array.init bits (fun i -> Int64.logand (Int64.shift_right_logical v i) 1L = 1L)

let int64_of_bool_array bits_arr =
  Array.to_list bits_arr
  |> List.mapi (fun i bit -> if bit then Int64.shift_left 1L i else 0L)
  |> List.fold_left Int64.logor 0L

let xor_word b (x : word) (y : word) : word =
  Array.init (width x) (fun i -> bxor b x.(i) y.(i))

(** AND every bit of [x] with the single bit [bit]. *)
let gate_word b bit (x : word) : word = Array.map (fun xi -> band b bit xi) x

let not_word b (x : word) : word = Array.map (bnot b) x

(** Ripple-carry addition modulo 2^n; carry chain uses one AND per bit:
    carry' = ((x XOR c) AND (y XOR c)) XOR c. *)
let add_word b (x : word) (y : word) : word =
  let n = width x in
  let out = Array.make n (const_ false) in
  let carry = ref (const_ false) in
  for i = 0 to n - 1 do
    let xc = bxor b x.(i) !carry in
    let yc = bxor b y.(i) !carry in
    out.(i) <- bxor b xc y.(i);
    if i < n - 1 then carry := bxor b (band b xc yc) !carry
  done;
  out

let neg_word b (x : word) : word =
  add_word b (not_word b x) (const_word ~bits:(width x) 1L)

let sub_word b (x : word) (y : word) : word = add_word b x (neg_word b y)

(** Schoolbook multiplication modulo 2^n. *)
let mul_word b (x : word) (y : word) : word =
  let n = width x in
  let acc = ref (const_word ~bits:n 0L) in
  for i = 0 to n - 1 do
    (* (x AND y_i) shifted left by i, truncated to n bits *)
    let partial =
      Array.init n (fun j -> if j < i then const_ false else band b y.(i) x.(j - i))
    in
    acc := add_word b !acc partial
  done;
  !acc

(** Equality of two words: one output bit; n-1 AND gates. *)
let eq_word b (x : word) (y : word) =
  let bits = Array.init (width x) (fun i -> bnot b (bxor b x.(i) y.(i))) in
  Array.fold_left (fun acc bit -> band b acc bit) (const_ true) bits

let nonzero_word b (x : word) =
  Array.fold_left (fun acc bit -> bor b acc bit) (const_ false) x

let is_zero_word b (x : word) = bnot b (nonzero_word b x)

(** Unsigned x < y via the borrow chain of x - y: one AND per bit. *)
let lt_word b (x : word) (y : word) =
  let borrow = ref (const_ false) in
  for i = 0 to width x - 1 do
    let nx = bnot b x.(i) in
    (* borrow' = maj(not x, y, borrow) = ((nx XOR bw) AND (y XOR bw)) XOR bw *)
    let a = bxor b nx !borrow in
    let c = bxor b y.(i) !borrow in
    borrow := bxor b (band b a c) !borrow
  done;
  !borrow

let gt_word b x y = lt_word b y x
let le_word b x y = bnot b (lt_word b y x)

(** [mux_word b ~sel x y] = if sel then x else y; one AND per bit. *)
let mux_word b ~sel (x : word) (y : word) : word =
  Array.init (width x) (fun i -> mux b ~sel x.(i) y.(i))

(** Restoring division of unsigned words: returns (quotient, remainder).
    Division by zero yields quotient all-ones and remainder x, as in
    hardware dividers. *)
let divmod_word b (x : word) (y : word) : word * word =
  let n = width x in
  let quotient = Array.make n (const_ false) in
  (* Remainder register one bit wider than the divisor so the trial
     subtraction cannot wrap. *)
  let rem = ref (Array.make (n + 1) (const_ false)) in
  let y_ext = Array.init (n + 1) (fun i -> if i < n then y.(i) else const_ false) in
  for i = n - 1 downto 0 do
    (* shift remainder left, bring in bit i of x *)
    let shifted =
      Array.init (n + 1) (fun j -> if j = 0 then x.(i) else !rem.(j - 1))
    in
    let diff = sub_word b shifted y_ext in
    let ge = bnot b (lt_word b shifted y_ext) in
    quotient.(i) <- ge;
    rem := mux_word b ~sel:ge diff shifted
  done;
  (quotient, Array.sub !rem 0 n)

let div_word b x y = fst (divmod_word b x y)

(** Conditional word: sel ? x : 0. One AND per bit. *)
let zero_unless b sel (x : word) : word = gate_word b sel x

(** Sum a list of words modulo 2^n (balanced tree keeps depth low;
    gate count is the same either way). *)
let rec sum_words b = function
  | [] -> invalid_arg "Circuits.sum_words: empty word list (expected at least one addend)"
  | [ w ] -> w
  | words ->
      let rec pair = function
        | [] -> []
        | [ w ] -> [ w ]
        | w1 :: w2 :: rest -> add_word b w1 w2 :: pair rest
      in
      sum_words b (pair words)

(** Materialize every bit of a word onto real wires (used before finalize
    when a word may contain folded constants). [anchor] is any input wire. *)
let materialize_word b anchor (x : word) : word =
  Array.map (fun v -> materialize b anchor v) x

let output_word ~outputs (x : word) = Array.iter (fun v -> outputs := v :: !outputs) x
