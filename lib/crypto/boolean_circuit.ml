(** Boolean circuits: the representation consumed by the garbled-circuit
    protocol (paper §5.2).

    A circuit has [n_inputs] input wires (ids [0 .. n_inputs-1]); gate [i]
    defines wire [n_inputs + i]. Gates are restricted to AND / XOR / NOT:
    with the free-XOR garbling technique only AND gates cost communication,
    so [and_count] is the figure of merit for all cost accounting. The
    builder performs constant folding so constants never appear as wires. *)

type gate =
  | And of int * int
  | Xor of int * int
  | Not of int

type t = {
  n_inputs : int;
  gates : gate array;
  outputs : int array;
  and_count : int;
}

let n_wires t = t.n_inputs + Array.length t.gates
let n_gates t = Array.length t.gates
let and_count t = t.and_count
let n_outputs t = Array.length t.outputs

(** Evaluate in the clear. [inputs] indexed by input wire id. *)
let eval t inputs =
  if Array.length inputs <> t.n_inputs then
    invalid_arg
      (Printf.sprintf "Boolean_circuit.eval: %d input bits for a circuit with %d inputs"
         (Array.length inputs) t.n_inputs);
  let values = Array.make (n_wires t) false in
  Array.blit inputs 0 values 0 t.n_inputs;
  Array.iteri
    (fun i gate ->
      let out = t.n_inputs + i in
      values.(out) <-
        (match gate with
        | And (x, y) -> values.(x) && values.(y)
        | Xor (x, y) -> values.(x) <> values.(y)
        | Not x -> not values.(x)))
    t.gates;
  Array.map (fun w -> values.(w)) t.outputs

module Builder = struct
  (** A builder value is either a known constant (folded away) or a wire. *)
  type value = Const of bool | Wire of int

  (* Gates are stored in a growable array (the builder is the hot path of
     every oblivious operator; list-based storage caused measurable GC
     churn on multi-million-gate merge circuits). *)
  type b = {
    mutable next_wire : int;
    mutable inputs : int list;       (* reverse creation order *)
    mutable gate_ops : gate array;   (* gate i writes wire gate_outs.(i) *)
    mutable gate_outs : int array;
    mutable gate_count : int;
  }

  let dummy_gate = Not 0

  let create () =
    {
      next_wire = 0;
      inputs = [];
      gate_ops = Array.make 64 dummy_gate;
      gate_outs = Array.make 64 0;
      gate_count = 0;
    }

  let fresh b =
    let w = b.next_wire in
    b.next_wire <- w + 1;
    w

  let input b =
    let w = fresh b in
    b.inputs <- w :: b.inputs;
    Wire w

  let inputs b n = Array.init n (fun _ -> input b)

  let const_ bit = Const bit

  let emit b gate =
    let w = fresh b in
    if b.gate_count = Array.length b.gate_ops then begin
      let cap = 2 * Array.length b.gate_ops in
      let ops = Array.make cap dummy_gate and outs = Array.make cap 0 in
      Array.blit b.gate_ops 0 ops 0 b.gate_count;
      Array.blit b.gate_outs 0 outs 0 b.gate_count;
      b.gate_ops <- ops;
      b.gate_outs <- outs
    end;
    b.gate_ops.(b.gate_count) <- gate;
    b.gate_outs.(b.gate_count) <- w;
    b.gate_count <- b.gate_count + 1;
    Wire w

  let bnot b = function
    | Const c -> Const (not c)
    | Wire w -> emit b (Not w)

  let bxor b x y =
    match x, y with
    | Const cx, Const cy -> Const (cx <> cy)
    | Const false, v | v, Const false -> v
    | Const true, v | v, Const true -> bnot b v
    | Wire wx, Wire wy -> if wx = wy then Const false else emit b (Xor (wx, wy))

  let band b x y =
    match x, y with
    | Const cx, Const cy -> Const (cx && cy)
    | Const false, _ | _, Const false -> Const false
    | Const true, v | v, Const true -> v
    | Wire wx, Wire wy -> if wx = wy then x else emit b (And (wx, wy))

  let bor b x y =
    (* x OR y = NOT (NOT x AND NOT y); costs one AND *)
    bnot b (band b (bnot b x) (bnot b y))

  (** [mux b ~sel x y] = if sel then x else y; one AND gate. *)
  let mux b ~sel x y = bxor b y (band b sel (bxor b x y))

  (** Remap wires so inputs occupy [0 .. k-1] in creation order and gates
      follow in creation order (which is already topological). *)
  let finalize b ~outputs =
    let inputs = List.rev b.inputs in
    let n_inputs = List.length inputs in
    let remap = Array.make b.next_wire (-1) in
    List.iteri (fun i w -> remap.(w) <- i) inputs;
    for i = 0 to b.gate_count - 1 do
      remap.(b.gate_outs.(i)) <- n_inputs + i
    done;
    let rw w =
      let w' = remap.(w) in
      assert (w' >= 0);
      w'
    in
    let gate_arr =
      Array.init b.gate_count (fun i ->
          match b.gate_ops.(i) with
          | And (x, y) -> And (rw x, rw y)
          | Xor (x, y) -> Xor (rw x, rw y)
          | Not x -> Not (rw x))
    in
    let and_count =
      Array.fold_left (fun acc g -> match g with And _ -> acc + 1 | Xor _ | Not _ -> acc) 0
        gate_arr
    in
    (* Outputs may be folded constants; materialize them as wires so that
       every circuit output is a genuine wire. A constant output is encoded
       as x XOR x (false) or NOT (x XOR x) (true) on input wire 0; circuits
       with zero inputs and constant outputs are not needed in practice. *)
    let out_arr =
      Array.map
        (function
          | Wire w -> rw w
          | Const _ -> invalid_arg "Boolean_circuit.finalize: constant output; \
                                    materialize via materialize_output first")
        outputs
    in
    { n_inputs; gates = gate_arr; outputs = out_arr; and_count }

  (** Force a possibly-constant value onto a real wire (XORing a fresh
      throwaway structure would change input count, so we synthesize the
      constant from an arbitrary existing wire). *)
  let materialize b anchor v =
    match v with
    | Wire _ -> v
    | Const c ->
        let zero = bxor b (Wire anchor) (Wire anchor) in
        (* zero is Const false due to folding; build via emit directly *)
        let z = match zero with Const _ -> emit b (Xor (anchor, anchor)) | w -> w in
        if c then bnot b z else z
end

let pp_stats fmt t =
  Fmt.pf fmt "%d inputs, %d gates (%d AND), %d outputs" t.n_inputs (n_gates t) t.and_count
    (n_outputs t)
