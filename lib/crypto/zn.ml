(** The ring Z_{2^bits} with elements stored in the low bits of an [int64].

    The paper fixes the semiring ground set to Z_n with n = 2^l where l is
    the annotation bit-length (l = 32 in the experiments). All share
    arithmetic happens in this ring; we support 1 <= bits <= 62 so that
    intermediate products never overflow the sign bit before masking. *)

type t = { bits : int; mask : int64 }

let create bits =
  if bits < 1 || bits > 62 then
    invalid_arg (Printf.sprintf "Zn.create: ring width %d bits outside [1, 62]" bits);
  { bits; mask = Int64.sub (Int64.shift_left 1L bits) 1L }

let bits t = t.bits
let modulus t = Int64.shift_left 1L t.bits

let norm t v = Int64.logand v t.mask
let add t a b = norm t (Int64.add a b)
let sub t a b = norm t (Int64.sub a b)
let mul t a b = norm t (Int64.mul a b)
let neg t a = norm t (Int64.neg a)
let zero = 0L
let one = 1L

let of_int t v = norm t (Int64.of_int v)

(** Interpret an element as a signed value in [\[-2^(bits-1), 2^(bits-1))];
    used when annotations encode differences (e.g. TPC-H Q9 profit). *)
let to_signed_int t v =
  let half = Int64.shift_left 1L (t.bits - 1) in
  let v = norm t v in
  if Int64.unsigned_compare v half >= 0 then Int64.to_int (Int64.sub v (modulus t))
  else Int64.to_int v

let to_int v = Int64.to_int v

let random t prg = Prg.bits prg t.bits

let equal a b = Int64.equal a b

let pp t fmt v = Fmt.pf fmt "%Ld (mod 2^%d)" v t.bits
