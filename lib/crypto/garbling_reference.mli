(** The pre-arena boxed garbling implementation, preserved as a
    differential baseline for {!Garbling}'s unboxed kernels.

    Bit-identical to {!Garbling} by construction (same half-gates math,
    same PRG draw order, same KDF tweak schedule) — the test suite
    asserts this on randomized circuits, and [bench gc-perf] uses the
    module to measure the minor-heap allocation rate the unboxed rewrite
    removed. Not called by any production path; see DESIGN.md §14. *)

module Label = Garbling.Label

type garbled = {
  circuit : Boolean_circuit.t;
  input_hi : int64 array;  (** false-label [hi] plane of each input wire *)
  input_lo : int64 array;  (** false-label [lo] plane of each input wire *)
  delta_hi : int64;
  delta_lo : int64;
  table_g_hi : int64 array;  (** generator half-gate ciphertext T_G, per AND gate *)
  table_g_lo : int64 array;
  table_e_hi : int64 array;  (** evaluator half-gate ciphertext T_E, per AND gate *)
  table_e_lo : int64 array;
  output_decode : bool array;  (** color of the false label of each output *)
}

val garble : ?kdf:Garbling.kdf -> Prg.t -> Boolean_circuit.t -> garbled
val encode_input : garbled -> int -> bool -> Label.t
val eval_labels : ?kdf:Garbling.kdf -> garbled -> Label.t array -> Label.t array
val decode_output : garbled -> out_index:int -> Label.t -> bool
