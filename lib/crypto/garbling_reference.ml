(** The pre-arena boxed garbling implementation, preserved verbatim as a
    differential baseline: labels in [int64 array] planes (every element
    store boxes), tables as four arrays, decode bits as [bool array],
    hash results as allocated pairs.

    {!Garbling} is the production path — unboxed [Bytes] planes with
    per-domain arenas (DESIGN.md §14). This module exists so that

    - the test suite can assert, on randomized circuits, that the unboxed
      kernels are {e bit-identical} to this reference (labels, tables,
      decode bits, outputs), and
    - the bench harness can measure the allocation rate the rewrite
      removed ([bench gc-perf] reports boxed vs. unboxed minor-heap words
      per AND gate).

    No production code calls into this module; it carries no metrics so
    its allocation profile is purely the garbling math. *)

module Label = Garbling.Label

(* The flat (plane-level) hash: tweak, hi, lo -> (hi, lo). The AES branch
   captures the pre-expanded fixed schedule so the per-gate call does no
   lazy checks or schedule lookups. *)
let flat_hash (kdf : Garbling.kdf) : int64 -> int64 -> int64 -> int64 * int64 =
  match kdf with
  | Aes128_kdf ->
      let sched = Aes128.fixed_key in
      fun tweak hi lo -> Aes128.label_hash_with sched ~tweak (hi, lo)
  | Sha256_kdf ->
      fun tweak hi lo ->
        let d = Sha256.digest_int64s [ hi; lo; tweak ] in
        (Bytes.get_int64_be d 0, Bytes.get_int64_be d 8)

type garbled = {
  circuit : Boolean_circuit.t;
  input_hi : int64 array;  (** false-label [hi] plane of each input wire *)
  input_lo : int64 array;  (** false-label [lo] plane of each input wire *)
  delta_hi : int64;
  delta_lo : int64;
  table_g_hi : int64 array;  (** generator half-gate ciphertext T_G, per AND gate *)
  table_g_lo : int64 array;
  table_e_hi : int64 array;  (** evaluator half-gate ciphertext T_E, per AND gate *)
  table_e_lo : int64 array;
  output_decode : bool array;  (** color of the false label of each output *)
}

let garble ?(kdf = Garbling.Aes128_kdf) prg circuit =
  let open Boolean_circuit in
  let hash = flat_hash kdf in
  (* Draw order matches Label.random_delta / Label.random: hi then lo. *)
  let delta_hi = Prg.next_int64 prg in
  let delta_lo = Int64.logor (Prg.next_int64 prg) 1L in
  let n_wires = n_wires circuit in
  let hi = Array.make n_wires 0L in
  let lo = Array.make n_wires 0L in
  for i = 0 to circuit.n_inputs - 1 do
    hi.(i) <- Prg.next_int64 prg;
    lo.(i) <- Prg.next_int64 prg
  done;
  let table_g_hi = Array.make circuit.and_count 0L in
  let table_g_lo = Array.make circuit.and_count 0L in
  let table_e_hi = Array.make circuit.and_count 0L in
  let table_e_lo = Array.make circuit.and_count 0L in
  let and_idx = ref 0 in
  Array.iteri
    (fun i gate ->
      let out = circuit.n_inputs + i in
      match gate with
      | Xor (x, y) ->
          hi.(out) <- Int64.logxor hi.(x) hi.(y);
          lo.(out) <- Int64.logxor lo.(x) lo.(y)
      | Not x ->
          hi.(out) <- Int64.logxor hi.(x) delta_hi;
          lo.(out) <- Int64.logxor lo.(x) delta_lo
      | And (x, y) ->
          let k = !and_idx in
          let j = Int64.of_int (2 * k) in
          let j' = Int64.of_int ((2 * k) + 1) in
          let wa0_hi = hi.(x) and wa0_lo = lo.(x) in
          let wb0_hi = hi.(y) and wb0_lo = lo.(y) in
          let pa = Int64.logand wa0_lo 1L = 1L in
          let pb = Int64.logand wb0_lo 1L = 1L in
          (* generator half-gate *)
          let ha0_hi, ha0_lo = hash j wa0_hi wa0_lo in
          let ha1_hi, ha1_lo =
            hash j (Int64.logxor wa0_hi delta_hi) (Int64.logxor wa0_lo delta_lo)
          in
          let tg_hi = Int64.logxor ha0_hi ha1_hi and tg_lo = Int64.logxor ha0_lo ha1_lo in
          let tg_hi = if pb then Int64.logxor tg_hi delta_hi else tg_hi in
          let tg_lo = if pb then Int64.logxor tg_lo delta_lo else tg_lo in
          let wg0_hi = if pa then Int64.logxor ha0_hi tg_hi else ha0_hi in
          let wg0_lo = if pa then Int64.logxor ha0_lo tg_lo else ha0_lo in
          (* evaluator half-gate *)
          let hb0_hi, hb0_lo = hash j' wb0_hi wb0_lo in
          let hb1_hi, hb1_lo =
            hash j' (Int64.logxor wb0_hi delta_hi) (Int64.logxor wb0_lo delta_lo)
          in
          let te_hi = Int64.logxor (Int64.logxor hb0_hi hb1_hi) wa0_hi in
          let te_lo = Int64.logxor (Int64.logxor hb0_lo hb1_lo) wa0_lo in
          let we0_hi = if pb then Int64.logxor hb0_hi (Int64.logxor te_hi wa0_hi) else hb0_hi in
          let we0_lo = if pb then Int64.logxor hb0_lo (Int64.logxor te_lo wa0_lo) else hb0_lo in
          hi.(out) <- Int64.logxor wg0_hi we0_hi;
          lo.(out) <- Int64.logxor wg0_lo we0_lo;
          table_g_hi.(k) <- tg_hi;
          table_g_lo.(k) <- tg_lo;
          table_e_hi.(k) <- te_hi;
          table_e_lo.(k) <- te_lo;
          incr and_idx)
    circuit.gates;
  let output_decode =
    Array.map (fun w -> Int64.logand lo.(w) 1L = 1L) circuit.outputs
  in
  {
    circuit;
    input_hi = Array.sub hi 0 circuit.n_inputs;
    input_lo = Array.sub lo 0 circuit.n_inputs;
    delta_hi;
    delta_lo;
    table_g_hi;
    table_g_lo;
    table_e_hi;
    table_e_lo;
    output_decode;
  }

(** The label encoding bit [b] on input wire [i]. *)
let encode_input g i b =
  if b then
    { Label.hi = Int64.logxor g.input_hi.(i) g.delta_hi;
      lo = Int64.logxor g.input_lo.(i) g.delta_lo }
  else { Label.hi = g.input_hi.(i); lo = g.input_lo.(i) }

(** Evaluate on active labels; returns the active label of each output. *)
let eval_labels ?(kdf = Garbling.Aes128_kdf) g (input_labels : Label.t array) =
  let open Boolean_circuit in
  let hash = flat_hash kdf in
  let circuit = g.circuit in
  if Array.length input_labels <> circuit.n_inputs then
    invalid_arg
      (Printf.sprintf
         "Garbling_reference.eval_labels: %d input labels for a circuit with %d inputs"
         (Array.length input_labels) circuit.n_inputs);
  let n_wires = n_wires circuit in
  let hi = Array.make n_wires 0L in
  let lo = Array.make n_wires 0L in
  Array.iteri
    (fun i (l : Label.t) ->
      hi.(i) <- l.Label.hi;
      lo.(i) <- l.Label.lo)
    input_labels;
  let and_idx = ref 0 in
  Array.iteri
    (fun i gate ->
      let out = circuit.n_inputs + i in
      match gate with
      | Xor (x, y) ->
          hi.(out) <- Int64.logxor hi.(x) hi.(y);
          lo.(out) <- Int64.logxor lo.(x) lo.(y)
      | Not x ->
          hi.(out) <- hi.(x);
          lo.(out) <- lo.(x)
      | And (x, y) ->
          let k = !and_idx in
          let j = Int64.of_int (2 * k) in
          let j' = Int64.of_int ((2 * k) + 1) in
          let wa_hi = hi.(x) and wa_lo = lo.(x) in
          let wb_hi = hi.(y) and wb_lo = lo.(y) in
          let sa = Int64.logand wa_lo 1L = 1L in
          let sb = Int64.logand wb_lo 1L = 1L in
          let ha_hi, ha_lo = hash j wa_hi wa_lo in
          let wg_hi = if sa then Int64.logxor ha_hi g.table_g_hi.(k) else ha_hi in
          let wg_lo = if sa then Int64.logxor ha_lo g.table_g_lo.(k) else ha_lo in
          let hb_hi, hb_lo = hash j' wb_hi wb_lo in
          let we_hi =
            if sb then Int64.logxor hb_hi (Int64.logxor g.table_e_hi.(k) wa_hi) else hb_hi
          in
          let we_lo =
            if sb then Int64.logxor hb_lo (Int64.logxor g.table_e_lo.(k) wa_lo) else hb_lo
          in
          hi.(out) <- Int64.logxor wg_hi we_hi;
          lo.(out) <- Int64.logxor wg_lo we_lo;
          incr and_idx)
    circuit.gates;
  Array.map (fun w -> { Label.hi = hi.(w); lo = lo.(w) }) circuit.outputs

(** Decode an output's active label to its cleartext bit. *)
let decode_output g ~out_index label = Label.color label <> g.output_decode.(out_index)
