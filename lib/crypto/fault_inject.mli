(** In-process fault injection for the batch engine: deterministic
    worker-raise / worker-hang / alloc-pressure faults keyed by global
    batch-item index — the compute-side sibling of the PR 3 wire chaos
    harness. Armed via the CLI's [--fault] or directly in tests; the
    injection point is [Gc_protocol.map_batch]'s per-item wrapper, so
    faults exercise the production supervision paths. Disarmed, {!fire}
    costs one branch. *)

type fault =
  | Raise  (** the item raises {!Injected} *)
  | Hang of float  (** the item blocks this many seconds first *)
  | Alloc of int  (** the item allocates and holds live this many MiB *)

(** Raised inside a faulted item by a [Raise] fault. *)
exception Injected of { item : int }

(** Faults keyed by global item index (batches reserve contiguous index
    ranges in submission order, so ids are deterministic per query). *)
type spec = (int * fault) list

val fault_to_string : fault -> string

(** Parse ["raise:ITEM,hang:ITEM:SECS,alloc:ITEM:MIB"]. *)
val parse_spec : string -> (spec, string) result

(** Arm [spec] for the next run: resets the global item counter, drops
    any held alloc ballast, clears the fired log. Not thread-safe —
    call between queries, never mid-batch. *)
val arm : spec -> unit

(** Disarm and release alloc ballast. Idempotent. *)
val disarm : unit -> unit

val armed : unit -> bool

(** Faults that actually fired, in firing order. *)
val fired : unit -> (int * fault) list

(** Reserve [n] consecutive global item ids for a batch; returns the
    base id. Constant 0 (and counter untouched) while disarmed. *)
val batch_base : int -> int

(** Trigger the fault armed for global item [item], if any: called by
    the batch engine on the claiming domain just before the item runs. *)
val fire : int -> unit
