(** Deterministic pseudo-random generator (xoshiro256** seeded via
    splitmix64). Every source of randomness in the library flows through a
    [Prg.t], so protocol runs are reproducible from a single seed. *)

type t

val create : int64 -> t
val next_int64 : t -> int64

(** A uniformly random non-negative [n]-bit value, [0 <= n <= 63]. *)
val bits : t -> int -> int64

(** Uniform integer in [[0, bound)], bias-free.
    @raise Invalid_argument when [bound <= 0]. *)
val below : t -> int -> int

val bool : t -> bool

(** Fisher–Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit

(** A fresh uniformly random permutation of [[0, n)]. *)
val permutation : t -> int -> int array

(** Derive an independent child generator. *)
val split : t -> t

(** The full generator state as four words: capture a stream position for
    a checkpoint, replay it with {!set_state}. *)
val state : t -> int64 array

(** Overwrite the generator state with four previously captured words.
    @raise Invalid_argument when the array is not 4 long. *)
val set_state : t -> int64 array -> unit
