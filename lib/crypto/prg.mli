(** Deterministic pseudo-random generator (xoshiro256** seeded via
    splitmix64). Every source of randomness in the library flows through a
    [Prg.t], so protocol runs are reproducible from a single seed. *)

type t

val create : int64 -> t
val next_int64 : t -> int64

(** A uniformly random non-negative [n]-bit value, [0 <= n <= 63]. *)
val bits : t -> int -> int64

(** Uniform integer in [[0, bound)], bias-free.
    @raise Invalid_argument when [bound <= 0]. *)
val below : t -> int -> int

val bool : t -> bool

(** Fisher–Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit

(** A fresh uniformly random permutation of [[0, n)]. *)
val permutation : t -> int -> int array

(** Derive an independent child generator. *)
val split : t -> t

(** [split_into t child] reseeds [child] in place exactly as {!split}
    would seed a fresh generator (same single draw from [t], same
    derivation), without allocating. The streams of [split t] and of a
    [split_into t child] at the same point of [t]'s stream are
    bit-identical. *)
val split_into : t -> t -> unit

(** [reseed t seed] re-initializes [t] in place as [create seed] would. *)
val reseed : t -> int64 -> unit

(** The full generator state as four words: capture a stream position for
    a checkpoint, replay it with {!set_state}. *)
val state : t -> int64 array

(** Overwrite the generator state with four previously captured words.
    @raise Invalid_argument when the array is not 4 long. *)
val set_state : t -> int64 array -> unit
