(** The hook interface between the protocol substrate and an observability
    layer living above it.

    The crypto library cannot depend on the tracing library (the tracer
    needs [Context] and [Comm]), so the coupling is inverted: every
    [Context.t] carries a sink — a record of callbacks — that defaults to
    {!noop}. Primitives announce span boundaries and bump typed counters
    through the sink; an attached tracer replaces it with recording
    closures. Untraced runs pay one physical-equality check per span and a
    call to a shared no-op closure per counter bump — no allocation. *)

(** Typed event counters bumped by the primitives. Semantics:

    - [And_gates]: AND gates garbled (or cost-equivalently simulated) by
      the GC protocol, summed over every execution of every batch.
    - [Ots]: 1-out-of-2 oblivious transfers executed or accounted —
      evaluator-input OTs of the GC protocol, the OTs underlying B2A
      conversion, and real {!Ot_extension} transfers. OEP switches are
      also realized by one OT each but are counted separately as
      [Oep_switches], never double-counted here.
    - [Oep_switches]: switches of programmed permutation networks
      (Benes + duplication layer) evaluated obliviously.
    - [Cuckoo_bins]: cuckoo bins processed by circuit-PSI (the batched
      OPPRF and the per-bin match circuits are sized by this).
    - [B2a_words]: Boolean-to-arithmetic share conversions of one output
      word each.
    - [Gc_circuits]: individual circuit executions (batch size times
      batches) passed through the GC protocol.
    - [Retries]: transport-level retransmissions of a logical message
      (attempts beyond the first; only bumped when a real transport is
      attached to the context).
    - [Timeouts]: transport receive attempts that expired without an
      intact frame.
    - [Frames_corrupted]: frames rejected by the transport's CRC check.
    - [Checkpoints_written]: durable protocol-state snapshots emitted.
    - [Checkpoint_bytes]: total on-disk bytes of those snapshots. Both
      checkpoint counters count {e persistence} work, not protocol work:
      they are excluded from checkpoint payloads so that resumed and
      uninterrupted runs agree on every protocol counter. *)
type counter =
  | And_gates
  | Ots
  | Oep_switches
  | Cuckoo_bins
  | B2a_words
  | Gc_circuits
  | Retries
  | Timeouts
  | Frames_corrupted
  | Checkpoints_written
  | Checkpoint_bytes

let n_counters = 11

let counter_index = function
  | And_gates -> 0
  | Ots -> 1
  | Oep_switches -> 2
  | Cuckoo_bins -> 3
  | B2a_words -> 4
  | Gc_circuits -> 5
  | Retries -> 6
  | Timeouts -> 7
  | Frames_corrupted -> 8
  | Checkpoints_written -> 9
  | Checkpoint_bytes -> 10

let counter_name = function
  | And_gates -> "and_gates"
  | Ots -> "ots"
  | Oep_switches -> "oep_switches"
  | Cuckoo_bins -> "cuckoo_bins"
  | B2a_words -> "b2a_words"
  | Gc_circuits -> "gc_circuits"
  | Retries -> "retries"
  | Timeouts -> "timeouts"
  | Frames_corrupted -> "frames_corrupted"
  | Checkpoints_written -> "checkpoints_written"
  | Checkpoint_bytes -> "checkpoint_bytes"

let all_counters =
  [ And_gates; Ots; Oep_switches; Cuckoo_bins; B2a_words; Gc_circuits; Retries; Timeouts;
    Frames_corrupted; Checkpoints_written; Checkpoint_bytes ]

let counter_help = function
  | And_gates -> "AND gates garbled or cost-equivalently simulated"
  | Ots -> "1-out-of-2 oblivious transfers executed or accounted"
  | Oep_switches -> "oblivious permutation-network switches evaluated"
  | Cuckoo_bins -> "cuckoo bins processed by circuit-PSI"
  | B2a_words -> "Boolean-to-arithmetic share conversions"
  | Gc_circuits -> "individual circuit executions through the GC protocol"
  | Retries -> "transport-level retransmissions"
  | Timeouts -> "transport receive attempts that expired"
  | Frames_corrupted -> "frames rejected by the transport CRC check"
  | Checkpoints_written -> "durable protocol-state snapshots emitted"
  | Checkpoint_bytes -> "total on-disk bytes of checkpoints"

(* Mirror every typed counter into the process-wide metrics registry
   (Prometheus convention: monotonic counters end in _total). Interned
   lazily so processes that never enable metrics allocate nothing. *)
let registry_counters =
  (* [all_counters] is in [counter_index] order *)
  lazy
    (Array.of_list
       (List.map
          (fun c ->
            Secyan_metrics.counter ~help:(counter_help c)
              ("secyan_" ^ counter_name c ^ "_total"))
          all_counters))

(** Forward one counter bump to the metrics registry (no-op when metrics
    are disabled). [Context.bump] calls this exactly once per unit of
    work — merged parallel-batch deltas do not re-forward. *)
let registry_bump c n =
  if Secyan_metrics.enabled () then
    Secyan_metrics.add (Lazy.force registry_counters).(counter_index c) n

type t = {
  enter : string -> unit;  (** open a child span under the active span *)
  exit : unit -> unit;     (** close the active span *)
  bump : counter -> int -> unit;  (** add to a counter of the active span *)
}

(** The default sink: does nothing. Compared with [==] by fast paths, so
    keep this the unique physical no-op value. *)
let noop = { enter = (fun _ -> ()); exit = (fun () -> ()); bump = (fun _ _ -> ()) }

(** A private accumulator sink and its backing array (indexed by
    {!counter_index}): bumps add to the array; span boundaries are
    ignored, so the code running under it must not open spans. Used by
    the parallel batch engine to give each worker a domain-private
    counter delta that the caller later folds into the real sink with
    {!merge_into} — the recording sink itself is only ever touched by
    the domain that owns the trace. *)
let accumulator () =
  let counts = Array.make n_counters 0 in
  let sink =
    {
      enter = (fun _ -> ());
      exit = (fun () -> ());
      bump = (fun c n -> counts.(counter_index c) <- counts.(counter_index c) + n);
    }
  in
  (sink, counts)

(** Fold an accumulated counter delta into [sink], one bump per nonzero
    counter. Call it from the domain that owns [sink]. *)
let merge_into sink (counts : int array) =
  List.iter
    (fun c ->
      let n = counts.(counter_index c) in
      if n <> 0 then sink.bump c n)
    all_counters
