(** Durable protocol-state checkpoints: versioned self-validating envelope
    (magic, format version, CRC-32 over the body, query fingerprint,
    session id, epoch, label, opaque payload), binary codec primitives for
    payload authors, and an atomic on-disk sink. Loading is strict: a
    truncated, corrupted, version-skewed or query-mismatched file raises
    the typed {!Checkpoint_error} — never a silent load. *)

type error_kind =
  | Io                    (** file missing or unreadable *)
  | Truncated             (** shorter than its own declared layout *)
  | Bad_magic             (** not a checkpoint file *)
  | Bad_version           (** produced by an incompatible format version *)
  | Crc_mismatch          (** body bytes damaged on disk *)
  | Fingerprint_mismatch  (** valid file, but for a different query/config *)
  | Malformed             (** envelope ok, payload fails to decode *)

val error_kind_name : error_kind -> string

exception Checkpoint_error of { path : string; kind : error_kind; detail : string }

(** Append-only binary writer: big-endian fixed-width ints,
    length-prefixed strings. The payload side of the codec. *)
module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val str : t -> string -> unit
  val i64_array : t -> int64 array -> unit
  val int_array : t -> int array -> unit
  val length : t -> int
  val contents : t -> Bytes.t
end

(** Strict cursor reader over one payload; any read past the end raises
    the typed error ([Truncated]) of the file the payload came from. *)
module Reader : sig
  type t

  val create : path:string -> Bytes.t -> t
  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val str : t -> string
  val i64_array : t -> int64 array
  val int_array : t -> int array
  val at_end : t -> bool

  (** Raise the typed error with kind [Malformed] for a payload that
      decodes but does not make sense. *)
  val malformed : t -> string -> 'a
end

(** A checkpoint file decoded down to (but not including) its payload. *)
type loaded = {
  path : string;
  fingerprint : string;
  session : string;
  epoch : int;
  label : string;
  payload : Bytes.t;
}

(** Encode an envelope around [payload]. Exposed for tests; runs use
    {!emit}. *)
val encode :
  fingerprint:string -> session:string -> epoch:int -> label:string -> Bytes.t -> Bytes.t

(** Decode and validate one envelope blob. @raise Checkpoint_error *)
val decode : path:string -> Bytes.t -> loaded

(** Exact on-disk size of a checkpoint with the given header strings and
    payload length — computable {e before} serializing the payload, so
    byte accounting can be folded into the payload itself. *)
val file_size :
  fingerprint:string -> session:string -> label:string -> payload_len:int -> int

(** Read and validate one checkpoint file. @raise Checkpoint_error *)
val read_file : string -> loaded

(** Path of epoch [e]'s file inside a checkpoint directory. *)
val file_of_epoch : string -> int -> string

(** Highest-epoch checkpoint file in a directory (by filename), or [None]
    when the directory is absent or holds none. Does not open the file. *)
val latest_path : string -> (int * string) option

(** Load the latest checkpoint of [dir], verifying it belongs to the run
    identified by [fingerprint]. [None] when the directory holds no
    checkpoints. @raise Checkpoint_error on any invalid or mismatched
    latest file — resumption never silently skips a damaged snapshot. *)
val load_latest : dir:string -> fingerprint:string -> loaded option

(** An on-disk emission stream: directory, session id, dense epoch
    counter, and write statistics. *)
type sink = {
  dir : string;
  mutable session : string;
  mutable next_epoch : int;
  mutable written : int;        (** snapshots emitted by this process *)
  mutable bytes_written : int;  (** total on-disk bytes of those snapshots *)
  mutable resumed_from : int option;
      (** epoch this run restarted from, for reporting *)
}

(** A sink writing into [dir] (created, with parents, if needed).
    [session] defaults to a name derived from the directory and is
    replaced by the stored session when a run is resumed. *)
val sink : ?session:string -> dir:string -> unit -> sink

(** Next epoch to be written. *)
val next_epoch : sink -> int

(** Exact on-disk size the next {!emit} on this sink will produce for a
    payload of [payload_len] bytes. *)
val predict_size : sink -> fingerprint:string -> label:string -> payload_len:int -> int

(** Emit one snapshot: encode, write to a temp file, atomically rename to
    the epoch's filename (replacing any stale file from a crashed run),
    advance the epoch. Returns bytes written.
    @raise Checkpoint_error with kind [Io] on filesystem failure. *)
val emit : sink -> fingerprint:string -> label:string -> Bytes.t -> int

(** Rebind the sink to continue a loaded checkpoint's stream: adopt its
    session id and write the next snapshot as [epoch + 1]. *)
val continue_from : sink -> loaded -> unit
