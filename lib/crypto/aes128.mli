(** AES-128 encryption (FIPS 197), pure OCaml, used as a fixed-key
    permutation for fast garbled-circuit key derivation. Encryption only;
    validated against the FIPS-197 vectors. The label-hash hot path runs
    in place over domain-local scratch (safe under parallel garbling) with
    table-driven MixColumns and a key schedule expanded once at module
    initialization. *)

(** The AES S-box, derived from the GF(2^8) arithmetic (test hook). *)
val sbox : int array

type schedule

(** @raise Invalid_argument unless the key is 16 bytes. *)
val expand_key : Bytes.t -> schedule

(** @raise Invalid_argument unless the block is 16 bytes. *)
val encrypt_block : schedule -> Bytes.t -> Bytes.t

(** Encrypt a 128-bit block given as an int64 pair. *)
val encrypt_pair : schedule -> int64 * int64 -> int64 * int64

(** The fixed key schedule used by garbling KDFs, expanded at module
    initialization (no lazy check on the hot path). *)
val fixed_key : schedule

(** [lazy fixed_key]; kept for callers that want an explicit suspension. *)
val fixed_schedule : schedule Lazy.t

(** Fixed-key correlation-robust hash for wire labels under an explicit
    pre-expanded schedule (the per-gate fast path):
    H(x, tweak) = pi(x') XOR x' with x' derived from x and the tweak. *)
val label_hash_with : schedule -> tweak:int64 -> int64 * int64 -> int64 * int64

(** {!label_hash_with} under {!fixed_key}. *)
val label_hash : tweak:int64 -> int64 * int64 -> int64 * int64

(** The label hash over [Bytes] planes, for the unboxed garbling kernels:
    reads the label at [src.(soff, soff+16)] ([hi] then [lo], native byte
    order), writes H(label, tweak) at [dst.(doff, doff+16)] in the same
    layout. Bit-identical to {!label_hash_with} at the same tweak value,
    but every intermediate stays unboxed — the call allocates nothing.
    Offsets are {e not} bounds-checked (callers size their planes from
    the circuit before the loop); [src == dst] is fine as long as the
    ranges do not overlap. *)
val label_hash_bytes : schedule -> tweak:int -> Bytes.t -> int -> Bytes.t -> int -> unit
