(** Bitonic sorting networks (Batcher).

    A sorting network is a data-independent sequence of compare-exchange
    operations — exactly the shape needed for oblivious sorting, the
    standard building block for extending the protocol beyond free-connex
    queries. [build n] yields the comparator schedule for any n (padded
    internally to a power of two with +infinity sentinels); [apply] runs
    it in the clear, and [comparator_count] drives cost accounting:
    Theta(n log^2 n) comparators.

    The schedule is built directly into a preallocated array — it sits on
    the per-query hot path of the oblivious ORDER BY phase, where it is
    walked once per sort (and its passes drive one GC batch each), so no
    cons-list, no [List.rev], no [List.length]. The closed-form count
    [expected_count] cross-checks construction. *)

type comparator = { lo : int; hi : int }
(** compare-exchange: after the gate, position [lo] holds the smaller
    element and [hi] the larger. *)

type t = {
  n : int;           (** logical input count *)
  padded : int;      (** power-of-two network width *)
  comparators : comparator array;
      (** the full schedule in execution order (passes concatenated) *)
  passes : comparator array array;
      (** the same schedule grouped by (k, j) pass: comparators within
          one pass touch pairwise-disjoint wire pairs, so a pass can be
          executed as a single parallel batch *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let log2_exact p =
  let rec go m v = if v <= 1 then m else go (m + 1) (v / 2) in
  go 0 p

(* Closed form for the bitonic schedule over [padded = 2^m] wires:
   m*(m+1)/2 passes of padded/2 comparators each. *)
let expected_count n =
  let padded = next_pow2 (max 2 n) in
  let m = log2_exact padded in
  padded / 2 * (m * (m + 1) / 2)

(** The comparator schedule sorting [n] elements ascending. *)
let build n =
  let padded = next_pow2 (max 2 n) in
  let m = log2_exact padded in
  let n_passes = m * (m + 1) / 2 in
  let per_pass = padded / 2 in
  let total = n_passes * per_pass in
  let comparators = Array.make total { lo = 0; hi = 0 } in
  let passes = Array.make n_passes [||] in
  let next = ref 0 in
  let pass = ref 0 in
  (* standard iterative bitonic sort over indices 0..padded-1 *)
  let k = ref 2 in
  while !k <= padded do
    let j = ref (!k / 2) in
    while !j >= 1 do
      let start = !next in
      for i = 0 to padded - 1 do
        let partner = i lxor !j in
        if partner > i then begin
          let ascending = i land !k = 0 in
          let lo, hi = if ascending then (i, partner) else (partner, i) in
          comparators.(!next) <- { lo; hi };
          incr next
        end
      done;
      if !next - start <> per_pass then
        invalid_arg
          (Printf.sprintf "Sorting_network.build: pass %d emitted %d comparators, expected %d"
             !pass (!next - start) per_pass);
      passes.(!pass) <- Array.sub comparators start per_pass;
      incr pass;
      j := !j / 2
    done;
    k := !k * 2
  done;
  (* cross-check construction against the closed form *)
  if !next <> total || !pass <> n_passes then
    invalid_arg
      (Printf.sprintf "Sorting_network.build: emitted %d comparators in %d passes, expected %d in %d"
         !next !pass total n_passes);
  { n; padded; comparators; passes }

let comparator_count t = Array.length t.comparators

let pass_count t = Array.length t.passes

(** Apply the network in the clear with a custom order; padding positions
    hold +infinity sentinels and are stripped from the output. *)
let apply ?(compare = Stdlib.compare) t (data : 'a array) =
  if Array.length data <> t.n then
    invalid_arg
      (Printf.sprintf "Sorting_network.apply: %d values for a network over %d wires"
         (Array.length data) t.n);
  let work = Array.init t.padded (fun i -> if i < t.n then Some data.(i) else None) in
  let le a b =
    match a, b with
    | Some x, Some y -> compare x y <= 0
    | Some _, None -> true
    | None, Some _ -> false
    | None, None -> true
  in
  Array.iter
    (fun { lo; hi } ->
      if not (le work.(lo) work.(hi)) then begin
        let tmp = work.(lo) in
        work.(lo) <- work.(hi);
        work.(hi) <- tmp
      end)
    t.comparators;
  Array.init t.n (fun i ->
      match work.(i) with
      | Some v -> v
      | None -> invalid_arg "Sorting_network.apply: sentinel surfaced early")
