(** Bitonic sorting networks (Batcher).

    A sorting network is a data-independent sequence of compare-exchange
    operations — exactly the shape needed for oblivious sorting, the
    standard building block for extending the protocol beyond free-connex
    queries (the paper's future-work direction: non-free-connex plans
    need oblivious sorts of secret-shared sequences). [build n] yields the
    comparator sequence for any n (padded internally to a power of two
    with +infinity sentinels); [apply] runs it in the clear, and
    [comparator_count] drives cost accounting: Theta(n log^2 n)
    comparators. *)

type comparator = { lo : int; hi : int }
(** compare-exchange: after the gate, position [lo] holds the smaller
    element and [hi] the larger. *)

type t = {
  n : int;           (** logical input count *)
  padded : int;      (** power-of-two network width *)
  comparators : comparator list;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(** The comparator sequence sorting [n] elements ascending. *)
let build n =
  let padded = next_pow2 (max 2 n) in
  let comparators = ref [] in
  (* standard iterative bitonic sort over indices 0..padded-1 *)
  let k = ref 2 in
  while !k <= padded do
    let j = ref (!k / 2) in
    while !j >= 1 do
      for i = 0 to padded - 1 do
        let partner = i lxor !j in
        if partner > i then begin
          let ascending = i land !k = 0 in
          let lo, hi = if ascending then (i, partner) else (partner, i) in
          comparators := { lo; hi } :: !comparators
        end
      done;
      j := !j / 2
    done;
    k := !k * 2
  done;
  { n; padded; comparators = List.rev !comparators }

let comparator_count t = List.length t.comparators

(** Apply the network in the clear with a custom order; padding positions
    hold +infinity sentinels and are stripped from the output. *)
let apply ?(compare = Stdlib.compare) t (data : 'a array) =
  if Array.length data <> t.n then
    invalid_arg
      (Printf.sprintf "Sorting_network.apply: %d values for a network over %d wires"
         (Array.length data) t.n);
  let work = Array.init t.padded (fun i -> if i < t.n then Some data.(i) else None) in
  let le a b =
    match a, b with
    | Some x, Some y -> compare x y <= 0
    | Some _, None -> true
    | None, Some _ -> false
    | None, None -> true
  in
  List.iter
    (fun { lo; hi } ->
      if not (le work.(lo) work.(hi)) then begin
        let tmp = work.(lo) in
        work.(lo) <- work.(hi);
        work.(hi) <- tmp
      end)
    t.comparators;
  Array.init t.n (fun i ->
      match work.(i) with
      | Some v -> v
      | None -> invalid_arg "Sorting_network.apply: sentinel surfaced early")
