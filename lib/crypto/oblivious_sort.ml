(** Oblivious sort and top-k over secret-shared rows (DESIGN.md §17).

    Executes the bitonic comparator schedule from {!Sorting_network.build}
    with every compare-exchange a garbled-circuit gadget: one GC batch per
    (k, j) pass (comparators within a pass touch disjoint wire pairs), so
    a sort costs m(m+1)/2 batches — O(log^2 n) rounds — plus one prep
    batch and, for top-k, one reveal round. The schedule, the batch
    shapes, and the per-pass circuit are all functions of the (public)
    padded row count alone, so the execution trace leaks row count and
    nothing else.

    Padding to the power-of-two network width uses {e in-protocol sentinel
    rows}: shares of all-zero words with the validity bit clear, built by
    [Secret_share.of_public] (zero communication) in the same input shape
    as the real rows, so they enter the very same circuits. The composite
    comparison key carries the negated validity bit as its most
    significant bit — invalid rows (sentinels, and real rows whose guard
    annotation is zero) sort strictly after every valid row, whatever
    their key bits say, and are never revealed by [top_k_reveal] as valid.

    Rows are (keys, payload) pairs of ring words. Key words may be
    compared descending (bitwise NOT — free) or as two's-complement
    signed values (top-bit flip — free); ties between keys fall through
    to the next key, so callers wanting a deterministic order supply a
    distinct final tiebreak key. Payload words ride along through the
    compare-exchange muxes untouched by the comparison. *)

module Bb = Boolean_circuit.Builder

type word_spec = {
  input : Gc_protocol.input;
  width : int;  (** logical bit width; values must reconstruct < 2^width *)
}

type key = {
  word : word_spec;
  descending : bool;  (** reverse the order (free: bitwise NOT) *)
  signed : bool;
      (** compare as two's complement at [width] (free: top-bit flip) *)
}

type row = {
  valid : Gc_protocol.input;
      (** 1-bit validity; must reconstruct to 0 or 1. Invalid rows sort
          after every valid row. *)
  valid_if_nonzero : int option;
      (** when [Some i], validity is additionally ANDed with
          [payload.(i) <> 0] inside the prep circuit *)
  keys : key list;
  payload : word_spec list;
}

type sorted = {
  invalid : Secret_share.t array;  (** 1 iff the row is invalid, per position *)
  keys : Secret_share.t array array;
  payload : Secret_share.t array array;
}

(* ---- shape handling ------------------------------------------------- *)

type shape = {
  s_valid_priv : (Party.t * int) option;  (* None = Shared *)
  s_guard : int option;
  s_keys : (bool * bool * ((Party.t * int) option) * int) list;
      (* descending, signed, priv owner/bits, width *)
  s_payload : (((Party.t * int) option) * int) list;
}

let priv_shape = function
  | Gc_protocol.Priv { owner; bits; _ } -> Some (owner, bits)
  | Gc_protocol.Shared _ -> None

let shape_of_row r =
  {
    s_valid_priv = priv_shape r.valid;
    s_guard = r.valid_if_nonzero;
    s_keys =
      List.map (fun k -> (k.descending, k.signed, priv_shape k.word.input, k.word.width)) r.keys;
    s_payload = List.map (fun w -> (priv_shape w.input, w.width)) r.payload;
  }

let check_shapes rows =
  let s0 = shape_of_row rows.(0) in
  Array.iteri
    (fun i r ->
      if shape_of_row r <> s0 then
        invalid_arg
          (Printf.sprintf "Oblivious_sort: row %d differs in shape from row 0 (all rows of a \
                           sort must be same-shaped)" i))
    rows;
  s0

let check_widths ctx rows =
  let ring_bits = Context.ring_bits ctx in
  let check_spec what (w : word_spec) =
    if w.width < 1 then invalid_arg (Printf.sprintf "Oblivious_sort: %s width < 1" what);
    (* normalized words become arithmetic shares, so every logical width
       must fit the ring — wider words would silently truncate in the
       B2A conversion. Callers split wide values into ring-width limbs
       (most significant first; the composite comparator concatenation
       makes that exactly equivalent). *)
    if w.width > ring_bits then
      invalid_arg
        (Printf.sprintf "Oblivious_sort: %s width %d exceeds the %d-bit ring (split wide \
                         values into ring-width limb words)" what w.width ring_bits);
    match w.input with
    | Gc_protocol.Priv { bits; _ } ->
        if bits <> w.width then
          invalid_arg
            (Printf.sprintf "Oblivious_sort: %s declares width %d but its private input \
                             enters as %d bits" what w.width bits)
    | Gc_protocol.Shared _ -> ()
  in
  let (r : row) = rows.(0) in
  List.iteri (fun i (k : key) -> check_spec (Printf.sprintf "key %d" i) k.word) r.keys;
  List.iteri (fun i w -> check_spec (Printf.sprintf "payload %d" i) w) r.payload;
  (match r.valid_if_nonzero with
  | Some i when i < 0 || i >= List.length r.payload ->
      invalid_arg
        (Printf.sprintf "Oblivious_sort: valid_if_nonzero index %d out of range (payload has \
                         %d words)" i (List.length r.payload))
  | _ -> ())

(* A sentinel row with the same input shape as the template, all values
   zero: validity reconstructs to 0, so it sorts after every valid row.
   [of_public] shares cost no communication — padding is free on the
   wire beyond the gadgets it flows through, and those gadgets are a
   function of the public padded width alone. *)
let sentinel_inputs ctx (s : shape) =
  let zero = function
    | Some (owner, bits) -> Gc_protocol.Priv { owner; value = 0L; bits }
    | None -> Gc_protocol.Shared (Secret_share.of_public ctx 0L)
  in
  zero s.s_valid_priv
  :: (List.map (fun (_, _, p, _) -> zero p) s.s_keys
     @ List.map (fun (p, _) -> zero p) s.s_payload)

let row_inputs r =
  r.valid :: (List.map (fun k -> k.word.input) r.keys @ List.map (fun w -> w.input) r.payload)

(* ---- prep: normalize every row to shared logical-width words -------- *)

(* One batched circuit maps each (valid, keys, payload) row to
   [not valid'; key'_1..key'_m; payload_1..payload_l] where valid' folds
   in the nonzero guard and key adjustments (descending / signed) are
   applied with free gates. Every output word becomes a fresh share, so
   the network passes see a uniform all-[Shared] shape. *)
let prep ctx (s : shape) items =
  let slice width (w : Circuits.word) =
    if Array.length w = width then w else Array.sub w 0 width
  in
  let build b (words : Circuits.word array) =
    let n_keys = List.length s.s_keys in
    let valid_bit = words.(0).(0) in
    let payload =
      List.mapi (fun i (_, width) -> slice width words.(1 + n_keys + i)) s.s_payload
    in
    let guard =
      match s.s_guard with
      | None -> valid_bit
      | Some i -> Bb.band b valid_bit (Circuits.nonzero_word b (List.nth payload i))
    in
    let invalid = Bb.bnot b guard in
    let keys =
      List.mapi
        (fun i (descending, signed, _, width) ->
          let kw = slice width words.(1 + i) in
          let kw =
            if signed then
              Circuits.xor_word b kw
                (Circuits.const_word ~bits:width (Int64.shift_left 1L (width - 1)))
            else kw
          in
          if descending then Circuits.not_word b kw else kw)
        s.s_keys
    in
    ([| invalid |] :: keys) @ payload
  in
  Gc_protocol.eval_to_shares_batch ctx ~items ~build

(* ---- the network: one GC batch per bitonic pass --------------------- *)

(* Logical widths of a normalized row's words: invalid bit, keys, payload. *)
let state_widths (s : shape) =
  1 :: (List.map (fun (_, _, _, w) -> w) s.s_keys @ List.map (fun (_, w) -> w) s.s_payload)

(* Compare-exchange over two normalized rows: the composite comparison
   word is [invalid | key_1 | ... | key_m] (invalid most significant, so
   invalid rows order after all valid ones); strictly-greater lo swaps
   the full rows, payload included, through muxes. *)
let exchange_build widths n_keys b (words : Circuits.word array) =
  let n_words = List.length widths in
  let row off =
    List.mapi (fun i w -> Array.sub words.(off + i) 0 w) widths
  in
  let lo = row 0 and hi = row n_words in
  let composite r =
    (* little-endian concat: last key least significant, invalid bit on top *)
    let keys = List.filteri (fun i _ -> i >= 1 && i <= n_keys) r in
    Array.concat (List.rev keys @ [ List.hd r ])
  in
  let swap = Circuits.lt_word b (composite hi) (composite lo) in
  List.map2 (fun l h -> Circuits.mux_word b ~sel:swap h l) lo hi
  @ List.map2 (fun l h -> Circuits.mux_word b ~sel:swap l h) lo hi

let run_network ctx (s : shape) (net : Sorting_network.t) state =
  let widths = state_widths s in
  let n_keys = List.length s.s_keys in
  let build = exchange_build widths n_keys in
  Array.iter
    (fun pass ->
      Context.check_cancel ctx;
      let items =
        Array.map
          (fun { Sorting_network.lo; hi } ->
            Array.to_list
              (Array.append
                 (Array.map (fun sh -> Gc_protocol.Shared sh) state.(lo))
                 (Array.map (fun sh -> Gc_protocol.Shared sh) state.(hi))))
          pass
      in
      let out = Gc_protocol.eval_to_shares_batch ctx ~items ~build in
      let n_words = List.length widths in
      Array.iteri
        (fun c { Sorting_network.lo; hi } ->
          state.(lo) <- Array.sub out.(c) 0 n_words;
          state.(hi) <- Array.sub out.(c) n_words n_words)
        pass)
    net.Sorting_network.passes

let sort_to_state ctx rows =
  let n = Array.length rows in
  let s = check_shapes rows in
  check_widths ctx rows;
  let net = Sorting_network.build n in
  let items =
    Array.init net.Sorting_network.padded (fun i ->
        if i < n then row_inputs rows.(i) else sentinel_inputs ctx s)
  in
  let state = prep ctx s items in
  run_network ctx s net state;
  (s, state)

let split_state (s : shape) state n =
  let n_keys = List.length s.s_keys in
  let n_payload = List.length s.s_payload in
  {
    invalid = Array.init n (fun i -> state.(i).(0));
    keys = Array.init n (fun i -> Array.sub state.(i) 1 n_keys);
    payload = Array.init n (fun i -> Array.sub state.(i) (1 + n_keys) n_payload);
  }

let sort ctx rows =
  if Array.length rows = 0 then { invalid = [||]; keys = [||]; payload = [||] }
  else
    Context.with_span ctx "sort:bitonic" @@ fun () ->
    let s, state = sort_to_state ctx rows in
    split_state s state (Array.length rows)

let top_k_reveal ctx ~k ~to_ rows =
  if k < 0 then invalid_arg "Oblivious_sort.top_k_reveal: negative k";
  let n = Array.length rows in
  let k = min k n in
  if k = 0 then [||]
  else
    Context.with_span ctx "sort:bitonic" @@ fun () ->
    let s, state = sort_to_state ctx rows in
    let n_keys = List.length s.s_keys in
    let n_payload = List.length s.s_payload in
    (* Reveal only the validity bit and the payload of the top k
       positions — never a key word. One round. *)
    let flat =
      Array.init (k * (1 + n_payload)) (fun i ->
          let pos = i / (1 + n_payload) and w = i mod (1 + n_payload) in
          if w = 0 then state.(pos).(0) else state.(pos).(n_keys + w))
    in
    let values =
      Context.with_span ctx "reveal:topk" @@ fun () ->
      Secret_share.reveal_batch ctx to_ flat
    in
    Array.init k (fun pos ->
        let off = pos * (1 + n_payload) in
        (Int64.equal values.(off) 1L, Array.init n_payload (fun w -> values.(off + 1 + w))))
