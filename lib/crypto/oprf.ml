(** Batched oblivious programmable PRF (OPPRF) — the core of PSTY19's
    circuit-based PSI (paper §5.3).

    The sender programs, per bin, a function that returns a chosen value on
    each programmed point and pseudo-random garbage elsewhere; the receiver
    evaluates it at one query point per bin and learns only the output.

    Realization: the programmed behaviour is computed by the runtime with
    unprogrammed outputs drawn from a per-instance dealer-keyed PRF
    (DESIGN.md §2.4 — real OPPRFs derive the same distribution from OT
    extension). Communication is accounted per PSTY19: a constant number of
    rounds and O(kappa + sigma) bits per bin. *)

let batch ctx ~sender ~out_bits ~(programming : (int64 * int64) list array)
    ~(queries : int64 array) : int64 array =
  let n_bins = Array.length programming in
  if Array.length queries <> n_bins then
    invalid_arg
      (Printf.sprintf "Oprf.batch: %d queries for %d programmed bins (expected one query \
                       per bin)"
         (Array.length queries) n_bins);
  Context.with_span ctx "oprf:batch" @@ fun () ->
  let receiver = Party.other sender in
  let comm = ctx.Context.comm in
  let per_bin = Cost_model.opprf_bin_bits ~kappa:ctx.Context.kappa ~sigma:ctx.Context.sigma in
  (* receiver's OPRF evaluations (OT-extension traffic), then the sender's
     programmed hints *)
  Comm.send comm ~from:receiver ~bits:(n_bins * ctx.Context.kappa);
  Comm.send comm ~from:sender ~bits:(n_bins * per_bin);
  Comm.bump_rounds comm 2;
  let instance_key = Prg.next_int64 ctx.Context.dealer in
  let mask = if out_bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L out_bits) 1L in
  Array.init n_bins (fun i ->
      let q = queries.(i) in
      match List.assoc_opt q programming.(i) with
      | Some v -> Int64.logand v mask
      | None ->
          Int64.logand (Sha256.prf64 ~tweak:instance_key [ Int64.of_int i; q ]) mask)
