(** Oblivious sort and top-k over secret-shared rows (DESIGN.md §17):
    the bitonic schedule of {!Sorting_network.build} with every
    compare-exchange a garbled-circuit gadget, batched one GC batch per
    network pass — O(log^2 n) rounds, Theta(n log^2 n) comparators.
    Padding to the power-of-two network width uses in-protocol sentinel
    rows (zero-value shares, validity clear, zero communication), so the
    trace is a function of the public row count alone. *)

type word_spec = {
  input : Gc_protocol.input;
  width : int;
      (** logical bit width: private inputs must enter as exactly [width]
          wires; shared inputs must reconstruct below 2^width (and
          [width] must not exceed the ring width) *)
}

type key = {
  word : word_spec;
  descending : bool;  (** reverse the order (free: bitwise NOT) *)
  signed : bool;
      (** compare as two's complement at [width] (free: top-bit flip) *)
}

type row = {
  valid : Gc_protocol.input;
      (** 1-bit validity; must reconstruct to 0 or 1. Invalid rows sort
          strictly after every valid row. *)
  valid_if_nonzero : int option;
      (** when [Some i], validity is additionally ANDed with
          [payload.(i) <> 0] inside the prep circuit — the standard guard
          for annotation-carrying rows where a zero annotation means
          "absent" *)
  keys : key list;
      (** comparison keys, most significant first; ties fall through to
          the next key. Supply a distinct final tiebreak key for a fully
          deterministic order (the network is not stable). *)
  payload : word_spec list;
      (** carried through the compare-exchange muxes, never compared *)
}

type sorted = {
  invalid : Secret_share.t array;  (** 1 iff the row at that position is invalid *)
  keys : Secret_share.t array array;
  payload : Secret_share.t array array;
}

(** Sort [rows] (all same-shaped) obliviously; returns fresh shares of
    the first [n] positions — valid rows first in key order, then
    invalid rows. Communication, rounds, gates, and the trace depend
    only on [n] and the row shape.

    @raise Invalid_argument on mixed row shapes or width violations. *)
val sort : Context.t -> row array -> sorted

(** Sort and reveal to [to_] only the validity bit and payload words of
    the first [min k n] positions (key shares are never opened): one
    extra round. Element [(invalid, payload)] with [invalid = true]
    means every later position is invalid too — fewer than [k] valid
    rows exist.

    @raise Invalid_argument on negative [k] or a bad row array. *)
val top_k_reveal :
  Context.t -> k:int -> to_:Party.t -> row array -> (bool * int64 array) array
