(** Hook interface between the protocol substrate and an observability
    layer above it: each {!Context.t} carries a sink (default {!noop})
    through which primitives announce span boundaries and bump typed
    counters. A tracer attaches by replacing the sink with recording
    closures; untraced runs cost one physical-equality check (no
    allocation). *)

(** Typed event counters bumped by the primitives:
    AND gates garbled, OTs executed (GC evaluator inputs, B2A, OT
    extension — OEP switches are counted separately), permutation-network
    switches, circuit-PSI cuckoo bins, B2A word conversions, GC circuit
    executions, and — when a real transport is attached — transport
    retransmissions, receive timeouts, and CRC-rejected frames; when a
    checkpoint sink is attached, snapshots written and their on-disk
    bytes (persistence work, excluded from checkpoint payloads so resumed
    and uninterrupted runs agree on every protocol counter). *)
type counter =
  | And_gates
  | Ots
  | Oep_switches
  | Cuckoo_bins
  | B2a_words
  | Gc_circuits
  | Retries
  | Timeouts
  | Frames_corrupted
  | Checkpoints_written
  | Checkpoint_bytes

val n_counters : int

(** Dense index in [0, n_counters), stable across a run. *)
val counter_index : counter -> int

(** Stable snake_case name used by exporters and metrics files. *)
val counter_name : counter -> string

val all_counters : counter list

(** One-line description of a counter, used as metric help text. *)
val counter_help : counter -> string

(** Mirror one counter bump into the [Secyan_metrics] registry as
    [secyan_<name>_total] (no-op while metrics are disabled). Called by
    [Context.bump] exactly once per unit of work. *)
val registry_bump : counter -> int -> unit

type t = {
  enter : string -> unit;  (** open a child span under the active span *)
  exit : unit -> unit;     (** close the active span *)
  bump : counter -> int -> unit;  (** add to a counter of the active span *)
}

(** The unique no-op sink; fast paths compare against it physically. *)
val noop : t

(** A private accumulator sink and its backing array (indexed by
    {!counter_index}): bumps add to the array, span boundaries are
    ignored. Gives parallel workers a domain-private counter delta to be
    folded into the owning domain's sink via {!merge_into}. *)
val accumulator : unit -> t * int array

(** Fold an accumulated counter delta into [sink] (one bump per nonzero
    counter); must be called from the domain that owns [sink]. *)
val merge_into : t -> int array -> unit
