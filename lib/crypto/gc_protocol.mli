(** The two-party garbled-circuit protocol (paper §5.2): evaluate a
    word-level computation over private and secret-shared inputs, with
    outputs either freshly arithmetic-shared or revealed to one party.

    The batch entry points implement the paper's "one garbled circuit per
    tuple" pattern — the circuit is built once from the first item's shape
    and reused (garbled afresh per item under the [Real] backend; a whole
    batch costs a constant number of rounds). The [Sim] backend evaluates
    in the clear inside the runtime with bit-identical cost accounting
    (asserted by the test suite). *)

type input =
  | Priv of { owner : Party.t; value : int64; bits : int }
      (** a private value of [owner], entering the circuit as [bits] wires *)
  | Shared of Secret_share.t
      (** an arithmetically shared ring element; the circuit sees its
          reconstruction (an adder front-end is prepended) *)

(** Why a supervised batch failed (DESIGN.md §15). *)
type supervision_cause =
  | Batch_item_raised of { message : string }
      (** an item raised; the batch was abort-failed fail-fast *)
  | Batch_worker_hung of { slot : int; silent_s : float }
      (** a pool worker went silent mid-item; the pool is poisoned (later
          batches run sequentially) and the recycled per-item context
          cache was dropped so the abandoned worker can corrupt nothing *)
  | Batch_shutdown of { unclaimed : int }
      (** the pool was shut down mid-batch *)

val supervision_cause_to_string : supervision_cause -> string

(** A supervised batch failed. [phase] is the protocol span the batch ran
    under (e.g. ["gc:shares"]); [item] the faulting global batch item
    ([-1] when no single item is at fault). Raised only when the owning
    context has a supervisor attached; cancellation raises
    [Deadline.Cancelled] instead, never this. The context stays usable:
    a subsequent query on it runs correctly (sequentially, if the pool
    was poisoned). *)
exception
  Supervision_error of { phase : string; item : int; cause : supervision_cause }

(** Evaluate the same circuit over a batch of same-shaped input lists;
    every output word of every item becomes a fresh arithmetic share. *)
val eval_to_shares_batch :
  Context.t ->
  items:input list array ->
  build:(Boolean_circuit.Builder.b -> Circuits.word array -> Circuits.word list) ->
  Secret_share.t array array

(** Single-item variant of {!eval_to_shares_batch}. *)
val eval_to_shares :
  Context.t ->
  inputs:input list ->
  build:(Boolean_circuit.Builder.b -> Circuits.word array -> Circuits.word list) ->
  Secret_share.t array

(** Evaluate a batch and reveal every output word of every item to [to_]
    only. *)
val eval_reveal_batch :
  Context.t ->
  to_:Party.t ->
  items:input list array ->
  build:(Boolean_circuit.Builder.b -> Circuits.word array -> Circuits.word list) ->
  int64 array array

(** Single-item variant of {!eval_reveal_batch}. *)
val eval_reveal :
  Context.t ->
  to_:Party.t ->
  inputs:input list ->
  build:(Boolean_circuit.Builder.b -> Circuits.word array -> Circuits.word list) ->
  int64 array

(** Single-input-list, single-output-word convenience. *)
val eval_to_share :
  Context.t ->
  inputs:input list ->
  build:(Boolean_circuit.Builder.b -> Circuits.word array -> Circuits.word) ->
  Secret_share.t
