(** Communication-cost constants for the simulated primitives, auditable
    in one place (DESIGN.md §2): half-gates garbling, IKNP OT extension,
    ABY-style B2A conversion, PSTY19 OPPRF hints, and permutation-network
    switches. All values are in bits. *)

(** Garbled table for one AND gate (half-gates: two kappa-bit rows). *)
val and_gate_bits : kappa:int -> int

(** One wire label for a garbler input. *)
val garbler_input_bits : kappa:int -> int

(** Receiver-side traffic of one IKNP-extended OT. *)
val ot_receiver_bits : kappa:int -> int

(** Sender-side traffic of one OT of two [msg_bits]-wide messages. *)
val ot_sender_bits : msg_bits:int -> int

(** One evaluator input = one OT of wire labels: (receiver, sender) bits. *)
val evaluator_input_ot : kappa:int -> int * int

val output_decode_bits : int

(** Boolean-to-arithmetic conversion of one [bits]-wide word. *)
val b2a_word_bits : kappa:int -> bits:int -> int

(** Per-cuckoo-bin OPPRF traffic (PSTY19 hint + OPRF evaluation). *)
val opprf_bin_bits : kappa:int -> sigma:int -> int

(** One oblivious switch of a permutation network on [bits]-wide
    payloads. *)
val oep_switch_bits : kappa:int -> bits:int -> int

(** Rough AND-gate count of one per-tuple merge/aggregate circuit over a
    [bits]-wide ring. Progress estimation only; never used for cost
    accounting. *)
val merge_circuit_and_gates : bits:int -> int
