(** Cuckoo hashing with 3 hash functions (paper §5.3, following PSTY19).

    Alice maps her M-element set into B = ceil(1.27 M) bins so that each
    bin holds at most one element; Bob later maps each of his elements into
    all three candidate bins ("simple hashing"). Hash functions are keyed
    SHA-256-based PRFs; on the (2^-sigma-probability) event that insertion
    fails, fresh keys are drawn — exactly the failure behaviour the paper
    budgets for. *)

type keys = { k1 : int64; k2 : int64; k3 : int64; n_bins : int }

let expansion = 1.27

let n_bins_for m = max 2 (int_of_float (ceil (expansion *. float_of_int (max 1 m))))

let fresh_keys prg n_bins =
  { k1 = Prg.next_int64 prg; k2 = Prg.next_int64 prg; k3 = Prg.next_int64 prg; n_bins }

let bin keys which x =
  let k = match which with 0 -> keys.k1 | 1 -> keys.k2 | _ -> keys.k3 in
  let h = Sha256.prf64 ~tweak:k [ x ] in
  Int64.to_int (Int64.unsigned_rem h (Int64.of_int keys.n_bins))

(** The three candidate bins of [x]. *)
let candidate_bins keys x = [ bin keys 0 x; bin keys 1 x; bin keys 2 x ]

type table = {
  keys : keys;
  slots : int64 option array;    (** element stored in each bin *)
  sources : int option array;    (** index of that element in the input array *)
}

exception Insertion_failed

exception
  Build_error of {
    elements : int;       (** number of elements being inserted *)
    n_bins : int;         (** table size the insertions were attempted into *)
    load_factor : float;  (** elements / n_bins — ~1/1.27 when sized normally *)
    attempts : int;       (** key refreshes tried before giving up *)
    context : string;     (** caller-supplied annotation; [""] when none *)
  }

let () =
  Printexc.register_printer (function
    | Build_error { elements; n_bins; load_factor; attempts; context } ->
        Some
          (Printf.sprintf
             "Cuckoo_hash.Build_error { elements = %d; n_bins = %d; load_factor = %.3f; \
              attempts = %d%s }"
             elements n_bins load_factor attempts
             (if context = "" then "" else Printf.sprintf "; context = %S" context))
    | _ -> None)

let try_build prg keys (elements : int64 array) =
  let slots = Array.make keys.n_bins None in
  let sources = Array.make keys.n_bins None in
  let max_kicks = 64 + (4 * Array.length elements) in
  let insert idx x =
    let rec kick idx x attempts =
      if attempts > max_kicks then raise Insertion_failed;
      let choice = Prg.below prg 3 in
      let b = bin keys choice x in
      match slots.(b) with
      | None ->
          slots.(b) <- Some x;
          sources.(b) <- Some idx
      | Some y ->
          let y_idx = match sources.(b) with Some i -> i | None -> assert false in
          slots.(b) <- Some x;
          sources.(b) <- Some idx;
          kick y_idx y (attempts + 1)
    in
    (* First try the three bins directly before random-walk eviction. *)
    let rec try_direct = function
      | [] -> kick idx x 0
      | b :: rest -> (
          match slots.(b) with
          | None ->
              slots.(b) <- Some x;
              sources.(b) <- Some idx
          | Some _ -> try_direct rest)
    in
    try_direct (candidate_bins keys x)
  in
  Array.iteri insert elements;
  { keys; slots; sources }

(** Build a cuckoo table over distinct [elements]; retries with fresh keys
    on failure. An under-provisioned table (caller-forced [n_bins] below
    the 1.27x expansion) surfaces as {!Build_error} rather than looping. *)
let build ?(n_bins = 0) ?(context = "") prg (elements : int64 array) =
  let n_bins = if n_bins > 0 then n_bins else n_bins_for (Array.length elements) in
  let rec go attempts =
    if attempts > 64 then
      raise
        (Build_error
           {
             elements = Array.length elements;
             n_bins;
             load_factor = float_of_int (Array.length elements) /. float_of_int n_bins;
             attempts;
             context;
           });
    let keys = fresh_keys prg n_bins in
    match try_build prg keys elements with
    | table -> table
    | exception Insertion_failed -> go (attempts + 1)
  in
  go 0

(** Bob's side: map every element of [ys] into each of its three candidate
    bins. Returns per-bin lists of indices into [ys]. *)
let simple_hash keys (ys : int64 array) =
  let bins = Array.make keys.n_bins [] in
  Array.iteri
    (fun j y ->
      (* An element whose candidate bins collide is inserted once per
         distinct bin. *)
      let cands = List.sort_uniq compare (candidate_bins keys y) in
      List.iter (fun b -> bins.(b) <- j :: bins.(b)) cands)
    ys;
  Array.map List.rev bins

(** Occupancy check used by tests: every input element is in exactly one of
    its candidate bins. *)
let check_table table (elements : int64 array) =
  Array.for_all
    (fun x ->
      List.exists
        (fun b -> match table.slots.(b) with Some y -> Int64.equal x y | None -> false)
        (candidate_bins table.keys x))
    elements
