(** 1-out-of-2 oblivious transfer from dealer-provided random OT.

    Base OT requires public-key crypto, which we replace with a trusted
    dealer handing out random-OT correlations (the standard offline-phase
    abstraction; see DESIGN.md §2.3). The online derandomization below is a
    real protocol: the receiver announces the XOR of its choice bit with the
    random choice, the sender responds with both messages masked under the
    random pads, and only the chosen one is recoverable. Costs are accounted
    per IKNP OT extension. *)

type 'a messages = { m0 : 'a; m1 : 'a }

(** Random OT correlation for [bits]-wide messages: sender pads and the
    receiver's random choice with its pad. *)
type correlation = {
  pad0 : int64;
  pad1 : int64;
  choice : bool;
}

let fresh_correlation ctx ~bits =
  let dealer = ctx.Context.dealer in
  { pad0 = Prg.bits dealer bits; pad1 = Prg.bits dealer bits; choice = Prg.bool dealer }

(** [transfer ctx ~sender ~bits ~messages ~choice_bit] delivers [m0] or
    [m1] (each [bits] wide) to the receiver according to [choice_bit],
    revealing nothing else. Returns the received message. *)
let transfer ctx ~sender ~bits ~(messages : int64 messages) ~choice_bit =
  let corr = fresh_correlation ctx ~bits in
  let receiver = Party.other sender in
  (* receiver -> sender: derandomization bit (+ the IKNP matrix column it
     stands in for) *)
  Comm.send ctx.Context.comm ~from:receiver
    ~bits:(1 + Cost_model.ot_receiver_bits ~kappa:ctx.Context.kappa);
  let e = choice_bit <> corr.choice in
  (* sender -> receiver: both messages masked under pads, swapped by e *)
  let z0, z1 =
    if e then (Int64.logxor messages.m1 corr.pad0, Int64.logxor messages.m0 corr.pad1)
    else (Int64.logxor messages.m0 corr.pad0, Int64.logxor messages.m1 corr.pad1)
  in
  Comm.send ctx.Context.comm ~from:sender ~bits:(Cost_model.ot_sender_bits ~msg_bits:bits);
  Comm.bump_rounds ctx.Context.comm 2;
  let z, pad = if corr.choice then (z1, corr.pad1) else (z0, corr.pad0) in
  Int64.logxor z pad

(** Batched OT: same correlation structure, one round trip for the whole
    batch (how OT extension is used in practice). *)
let transfer_batch ctx ~sender ~bits ~(messages : int64 messages array) ~choices =
  let n = Array.length messages in
  if Array.length choices <> n then
    invalid_arg
      (Printf.sprintf
         "Oblivious_transfer.transfer_batch: %d choice bits for %d message pairs \
          (expected one choice per pair)"
         (Array.length choices) n);
  let receiver = Party.other sender in
  Comm.send ctx.Context.comm ~from:receiver
    ~bits:(n * (1 + Cost_model.ot_receiver_bits ~kappa:ctx.Context.kappa));
  Comm.send ctx.Context.comm ~from:sender
    ~bits:(n * Cost_model.ot_sender_bits ~msg_bits:bits);
  Comm.bump_rounds ctx.Context.comm 2;
  Array.init n (fun i ->
      let corr = fresh_correlation ctx ~bits in
      let e = choices.(i) <> corr.choice in
      let m = messages.(i) in
      let z0, z1 =
        if e then (Int64.logxor m.m1 corr.pad0, Int64.logxor m.m0 corr.pad1)
        else (Int64.logxor m.m0 corr.pad0, Int64.logxor m.m1 corr.pad1)
      in
      let z, pad = if corr.choice then (z1, corr.pad1) else (z0, corr.pad0) in
      Int64.logxor z pad)
