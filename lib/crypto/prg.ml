(** Deterministic pseudo-random generator.

    A splitmix64 stream seeds an xoshiro256** state; the combination is the
    standard recipe recommended by the xoshiro authors. Every source of
    randomness in the library flows through a [Prg.t] so that protocol runs
    are reproducible from a single seed. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let reseed t seed =
  let state = ref seed in
  t.s0 <- splitmix64 state;
  t.s1 <- splitmix64 state;
  t.s2 <- splitmix64 state;
  t.s3 <- splitmix64 state

let create seed =
  let t = { s0 = 0L; s1 = 0L; s2 = 0L; s3 = 0L } in
  reseed t seed;
  t

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(** [bits t n] returns a uniformly random non-negative value of [n] bits,
    [0 <= n <= 63]. *)
let bits t n =
  if n = 0 then 0L
  else Int64.shift_right_logical (next_int64 t) (64 - n)

(** Uniform integer in [\[0, bound)] by rejection sampling. *)
let below t bound =
  if bound <= 0 then
    invalid_arg (Printf.sprintf "Prg.below: bound = %d, expected a positive integer" bound);
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    (* Reject the final partial block to avoid modulo bias. *)
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Fisher-Yates shuffle of [a] in place. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** A fresh random permutation of [\[0, n)] as an array. *)
let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

(** Derive an independent child generator; used to hand each party its own
    stream from a master seed. *)
let split t = create (next_int64 t)

(** [split_into t child] reseeds [child] in place with the derivation
    {!split} would use, consuming the same one draw from [t] — the
    allocation-free variant for callers that recycle child generators
    (the GC batch engine's per-item contexts). *)
let split_into t child = reseed child (next_int64 t)

(** The full generator state as four words; with {!set_state} this lets a
    checkpoint capture and later replay a stream position exactly. *)
let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let set_state t a =
  if Array.length a <> 4 then
    invalid_arg
      (Printf.sprintf "Prg.set_state: %d state words, expected 4" (Array.length a));
  t.s0 <- a.(0);
  t.s1 <- a.(1);
  t.s2 <- a.(2);
  t.s3 <- a.(3)
