(** AES-128 encryption (FIPS 197), pure OCaml.

    Used as a fixed-key permutation for fast garbled-circuit key
    derivation (the standard practice in MPC implementations such as the
    one the paper builds on: one key schedule, then two AES calls per
    garbled row). The S-box is derived from the field arithmetic rather
    than embedded as a table; encryption is validated against the FIPS-197
    vectors in the test suite. Only encryption is implemented — the KDF
    never decrypts.

    The hot path is {!label_hash_with}: rounds run in place over a 16-int
    state held in domain-local scratch (safe under parallel garbling), the
    GF(2^8) doublings/triplings come from precomputed tables, and the
    fixed key schedule is expanded once at module initialization — the
    per-gate hash does no [Bytes] traffic, no lazy checks, and no schedule
    lookups. *)

(* --- GF(2^8) arithmetic -------------------------------------------- *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else go (xtime a) (b lsr 1) (if b land 1 = 1 then acc lxor a else acc)
  in
  go a b 0

(* multiplicative inverse via x^254 (x^(2^8 - 2)) *)
let gf_inv a =
  if a = 0 then 0
  else begin
    let sq x = gf_mul x x in
    (* addition chain for 254 = 0b11111110 *)
    let x2 = sq a in
    let x3 = gf_mul x2 a in
    let x6 = sq x3 in
    let x7 = gf_mul x6 a in
    let x14 = sq x7 in
    let x15 = gf_mul x14 a in
    let x30 = sq x15 in
    let x31 = gf_mul x30 a in
    let x62 = sq x31 in
    let x63 = gf_mul x62 a in
    let x126 = sq x63 in
    let x127 = gf_mul x126 a in
    sq x127
  end

(* --- S-box: inverse followed by the affine transform ---------------- *)

let sbox =
  Array.init 256 (fun i ->
      let b = gf_inv i in
      let bit x n = (x lsr n) land 1 in
      let out = ref 0 in
      for n = 0 to 7 do
        let v =
          bit b n lxor bit b ((n + 4) mod 8) lxor bit b ((n + 5) mod 8)
          lxor bit b ((n + 6) mod 8) lxor bit b ((n + 7) mod 8) lxor bit 0x63 n
        in
        out := !out lor (v lsl n)
      done;
      !out)

(* MixColumns multiplier tables: x2[b] = 2*b, x3[b] = 3*b in GF(2^8). *)
let x2 = Array.init 256 xtime
let x3 = Array.init 256 (fun b -> xtime b lxor b)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

(* --- key schedule ---------------------------------------------------- *)

type schedule = int array array  (* 11 round keys of 16 bytes *)

let expand_key (key : Bytes.t) : schedule =
  if Bytes.length key <> 16 then
    invalid_arg
      (Printf.sprintf "Aes128.expand_key: key of %d bytes, expected exactly 16"
         (Bytes.length key));
  (* 44 words of 4 bytes *)
  let w = Array.make 44 [| 0; 0; 0; 0 |] in
  for i = 0 to 3 do
    w.(i) <-
      [|
        Char.code (Bytes.get key (4 * i));
        Char.code (Bytes.get key ((4 * i) + 1));
        Char.code (Bytes.get key ((4 * i) + 2));
        Char.code (Bytes.get key ((4 * i) + 3));
      |]
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        (* rotword + subword + rcon *)
        let rotated = [| temp.(1); temp.(2); temp.(3); temp.(0) |] in
        let subbed = Array.map (fun b -> sbox.(b)) rotated in
        subbed.(0) <- subbed.(0) lxor rcon.((i / 4) - 1);
        subbed
      end
      else temp
    in
    w.(i) <- Array.map2 ( lxor ) w.(i - 4) temp
  done;
  Array.init 11 (fun r ->
      Array.concat [ w.(4 * r); w.((4 * r) + 1); w.((4 * r) + 2); w.((4 * r) + 3) ])

(* --- rounds ----------------------------------------------------------- *)

(* State: 16 bytes in column-major order as FIPS 197, held as an int
   array. Rounds run fully in place; SubBytes and ShiftRows are fused
   into the register reads of each round (new[r + 4c] reads
   old[r + 4((c + r) mod 4)] through the S-box), then MixColumns and
   AddRoundKey write the column back. *)
let encrypt_state (sched : schedule) (st : int array) : unit =
  let rk = sched.(0) in
  for i = 0 to 15 do
    st.(i) <- st.(i) lxor rk.(i)
  done;
  for round = 1 to 9 do
    let rk = sched.(round) in
    let s0 = sbox.(st.(0)) and s1 = sbox.(st.(5)) and s2 = sbox.(st.(10)) and s3 = sbox.(st.(15)) in
    let s4 = sbox.(st.(4)) and s5 = sbox.(st.(9)) and s6 = sbox.(st.(14)) and s7 = sbox.(st.(3)) in
    let s8 = sbox.(st.(8)) and s9 = sbox.(st.(13)) and s10 = sbox.(st.(2)) and s11 = sbox.(st.(7)) in
    let s12 = sbox.(st.(12)) and s13 = sbox.(st.(1)) and s14 = sbox.(st.(6)) and s15 = sbox.(st.(11)) in
    st.(0) <- x2.(s0) lxor x3.(s1) lxor s2 lxor s3 lxor rk.(0);
    st.(1) <- s0 lxor x2.(s1) lxor x3.(s2) lxor s3 lxor rk.(1);
    st.(2) <- s0 lxor s1 lxor x2.(s2) lxor x3.(s3) lxor rk.(2);
    st.(3) <- x3.(s0) lxor s1 lxor s2 lxor x2.(s3) lxor rk.(3);
    st.(4) <- x2.(s4) lxor x3.(s5) lxor s6 lxor s7 lxor rk.(4);
    st.(5) <- s4 lxor x2.(s5) lxor x3.(s6) lxor s7 lxor rk.(5);
    st.(6) <- s4 lxor s5 lxor x2.(s6) lxor x3.(s7) lxor rk.(6);
    st.(7) <- x3.(s4) lxor s5 lxor s6 lxor x2.(s7) lxor rk.(7);
    st.(8) <- x2.(s8) lxor x3.(s9) lxor s10 lxor s11 lxor rk.(8);
    st.(9) <- s8 lxor x2.(s9) lxor x3.(s10) lxor s11 lxor rk.(9);
    st.(10) <- s8 lxor s9 lxor x2.(s10) lxor x3.(s11) lxor rk.(10);
    st.(11) <- x3.(s8) lxor s9 lxor s10 lxor x2.(s11) lxor rk.(11);
    st.(12) <- x2.(s12) lxor x3.(s13) lxor s14 lxor s15 lxor rk.(12);
    st.(13) <- s12 lxor x2.(s13) lxor x3.(s14) lxor s15 lxor rk.(13);
    st.(14) <- s12 lxor s13 lxor x2.(s14) lxor x3.(s15) lxor rk.(14);
    st.(15) <- x3.(s12) lxor s13 lxor s14 lxor x2.(s15) lxor rk.(15)
  done;
  let rk = sched.(10) in
  let s0 = sbox.(st.(0)) and s1 = sbox.(st.(5)) and s2 = sbox.(st.(10)) and s3 = sbox.(st.(15)) in
  let s4 = sbox.(st.(4)) and s5 = sbox.(st.(9)) and s6 = sbox.(st.(14)) and s7 = sbox.(st.(3)) in
  let s8 = sbox.(st.(8)) and s9 = sbox.(st.(13)) and s10 = sbox.(st.(2)) and s11 = sbox.(st.(7)) in
  let s12 = sbox.(st.(12)) and s13 = sbox.(st.(1)) and s14 = sbox.(st.(6)) and s15 = sbox.(st.(11)) in
  st.(0) <- s0 lxor rk.(0);
  st.(1) <- s1 lxor rk.(1);
  st.(2) <- s2 lxor rk.(2);
  st.(3) <- s3 lxor rk.(3);
  st.(4) <- s4 lxor rk.(4);
  st.(5) <- s5 lxor rk.(5);
  st.(6) <- s6 lxor rk.(6);
  st.(7) <- s7 lxor rk.(7);
  st.(8) <- s8 lxor rk.(8);
  st.(9) <- s9 lxor rk.(9);
  st.(10) <- s10 lxor rk.(10);
  st.(11) <- s11 lxor rk.(11);
  st.(12) <- s12 lxor rk.(12);
  st.(13) <- s13 lxor rk.(13);
  st.(14) <- s14 lxor rk.(14);
  st.(15) <- s15 lxor rk.(15)

let encrypt_block (sched : schedule) (input : Bytes.t) : Bytes.t =
  if Bytes.length input <> 16 then
    invalid_arg
      (Printf.sprintf "Aes128.encrypt_block: block of %d bytes, expected exactly 16"
         (Bytes.length input));
  let state = Array.init 16 (fun i -> Char.code (Bytes.get input i)) in
  encrypt_state sched state;
  let out = Bytes.create 16 in
  Array.iteri (fun i b -> Bytes.set out i (Char.chr b)) state;
  out

(* --- int64-pair convenience for wire labels -------------------------- *)

(* Pack/unpack between an (hi, lo) big-endian pair and the int state,
   avoiding Bytes round-trips on the hot path. *)
let state_of_pair (st : int array) hi lo =
  for i = 0 to 7 do
    st.(i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical hi (56 - (8 * i))) 0xFFL);
    st.(8 + i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical lo (56 - (8 * i))) 0xFFL)
  done

let pair_of_state (st : int array) =
  let word off =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int st.(off + i))
    done;
    !v
  in
  (word 0, word 8)

(* Per-domain scratch state: parallel garblers each get their own. *)
let scratch = Domain.DLS.new_key (fun () -> Array.make 16 0)

let encrypt_pair sched (hi, lo) =
  let st = Domain.DLS.get scratch in
  state_of_pair st hi lo;
  encrypt_state sched st;
  pair_of_state st

(** The fixed key used for garbling KDFs (a nothing-up-my-sleeve value),
    expanded once at module initialization. *)
let fixed_key : schedule =
  expand_key (Bytes.of_string "\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f")

let fixed_schedule = lazy fixed_key

(** Fixed-key hash for wire labels under an explicit (pre-expanded)
    schedule: H(x, tweak) = pi(x') XOR x' where x' = 2x XOR tweak (the
    standard correlation-robust construction). *)
let label_hash_with (sched : schedule) ~tweak (hi, lo) =
  let hi' = Int64.logxor (Int64.shift_left hi 1) tweak in
  let lo' = Int64.logxor (Int64.shift_left lo 1) (Int64.lognot tweak) in
  let st = Domain.DLS.get scratch in
  state_of_pair st hi' lo';
  encrypt_state sched st;
  let chi, clo = pair_of_state st in
  (Int64.logxor chi hi', Int64.logxor clo lo')

let label_hash ~tweak pair = label_hash_with fixed_key ~tweak pair

(* Unaligned native-endian int64 access into [Bytes]. These compile to
   plain loads/stores in native code — the operands stay unboxed, which
   is the whole point of the [Bytes]-plane variant below. *)
external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(** The label hash over [Bytes] planes: reads the 128-bit label at
    [src.(soff, soff+16)] ([hi] first, [lo] at [soff + 8], native byte
    order) and writes H(label, tweak) at [dst.(doff, doff+16)] in the
    same layout. Bit-identical to {!label_hash_with} at the same
    [tweak] value; unlike it, every intermediate stays unboxed — the
    per-gate call allocates nothing. Offsets are not bounds-checked:
    callers are the garbling inner loops, which size their planes from
    the circuit before the loop. *)
let label_hash_bytes (sched : schedule) ~tweak (src : Bytes.t) soff (dst : Bytes.t) doff =
  let tweak64 = Int64.of_int tweak in
  let hi' = Int64.logxor (Int64.shift_left (get64u src soff) 1) tweak64 in
  let lo' = Int64.logxor (Int64.shift_left (get64u src (soff + 8)) 1) (Int64.lognot tweak64) in
  let st = Domain.DLS.get scratch in
  (* [state_of_pair]/[pair_of_state] inlined by hand: calling them would
     box [hi']/[lo'] at the call boundary and allocate the result pair,
     which is exactly what this variant exists to avoid. *)
  for i = 0 to 7 do
    st.(i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical hi' (56 - (8 * i))) 0xFFL);
    st.(8 + i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical lo' (56 - (8 * i))) 0xFFL)
  done;
  encrypt_state sched st;
  let chi =
    Int64.logor (Int64.shift_left (Int64.of_int st.(0)) 56)
      (Int64.logor (Int64.shift_left (Int64.of_int st.(1)) 48)
         (Int64.logor (Int64.shift_left (Int64.of_int st.(2)) 40)
            (Int64.logor (Int64.shift_left (Int64.of_int st.(3)) 32)
               (Int64.logor (Int64.shift_left (Int64.of_int st.(4)) 24)
                  (Int64.logor (Int64.shift_left (Int64.of_int st.(5)) 16)
                     (Int64.logor (Int64.shift_left (Int64.of_int st.(6)) 8)
                        (Int64.of_int st.(7))))))))
  in
  let clo =
    Int64.logor (Int64.shift_left (Int64.of_int st.(8)) 56)
      (Int64.logor (Int64.shift_left (Int64.of_int st.(9)) 48)
         (Int64.logor (Int64.shift_left (Int64.of_int st.(10)) 40)
            (Int64.logor (Int64.shift_left (Int64.of_int st.(11)) 32)
               (Int64.logor (Int64.shift_left (Int64.of_int st.(12)) 24)
                  (Int64.logor (Int64.shift_left (Int64.of_int st.(13)) 16)
                     (Int64.logor (Int64.shift_left (Int64.of_int st.(14)) 8)
                        (Int64.of_int st.(15))))))))
  in
  set64u dst doff (Int64.logxor chi hi');
  set64u dst (doff + 8) (Int64.logxor clo lo')
