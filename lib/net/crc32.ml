(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.

    This is the frame checksum of the transport layer: cheap enough to run
    over every payload, and — unlike a truncated cryptographic hash — the
    standard choice for detecting line corruption rather than adversarial
    tampering (integrity against an adversary is the job of the protocol
    layer above, which authenticates nothing less than the whole
    transcript). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** [update crc b ~pos ~len] extends a running checksum (start from
    {!empty}) with [len] bytes of [b] at [pos]. *)
let update crc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg
      (Printf.sprintf "Crc32.update: slice [%d, %d) outside buffer of %d bytes" pos (pos + len)
         (Bytes.length b));
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let empty = 0

(** Checksum of one slice; an [int] holding the 32-bit value. *)
let digest b ~pos ~len = update empty b ~pos ~len
