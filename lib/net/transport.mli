(** Raw two-party frame transports. Both parties live in one process, so
    a transport is a pair of unidirectional frame channels the caller
    drives from both ends. Two backends share the interface: {!inproc}
    (duplex in-memory queues; frames still pass through {!Frame}
    encode/decode) and {!tcp} (a connected loopback socket pair; sends
    interleave writes with draining the peer so oversized frames cannot
    deadlock the single-threaded process). *)

type direction = Alice_to_bob | Bob_to_alice

val direction_name : direction -> string

(** Raised by raw operations once the channel is closed or the peer is
    gone; the resilience layer maps it to the unrecoverable
    [Transport_error] kind. *)
exception Closed of string

(** Raised by the [tcp] backend when the peer keeps the channel alive but
    stops making frame progress: a partially received frame older than
    the stall window (slow-loris trickling), or a send loop that can
    neither write nor drain for the same window. The resilience layer
    maps it to [Transport_error {kind = Timeout}]. *)
exception Stalled of string

type raw = {
  send_frame : direction -> Bytes.t -> unit;
      (** push one encoded frame. @raise Closed on a dead channel. *)
  recv_frame : direction -> deadline:float -> Bytes.t option;
      (** pop the next frame travelling in [direction]; [None] when
          nothing arrived by [deadline] (absolute time). [inproc] reports
          an empty queue as an instantaneous timeout.
          @raise Closed on a dead channel. *)
  close : unit -> unit;  (** idempotent *)
  kind : string;
}

val inproc : unit -> raw

(** [stall_timeout_s] (default 30 s) is the per-frame progress window:
    every frame must arrive completely, and every send must make write or
    drain progress, within it — otherwise the backend raises {!Stalled}
    rather than looping against a wedged or trickling peer. *)
val tcp : ?stall_timeout_s:float -> unit -> raw
