(** Raw two-party frame transports.

    Both protocol parties live in one process (the runtime simulates the
    two-party computation), so a transport is a pair of unidirectional
    frame channels owned by that single process: the caller plays the
    sender when it pushes a frame and the receiver when it pops one. Two
    backends implement the same record-of-closures interface so the chaos
    wrapper and the resilience layer compose over either:

    - {!inproc}: a duplex in-memory queue pair. Frames are still passed
      through {!Frame} encode/decode, so framing and CRC verification are
      exercised even in the default single-process configuration.
      [recv_frame] never blocks: an empty queue reports an (instantaneous)
      timeout, which keeps fault-injection tests deterministic and fast.
    - {!tcp}: a connected loopback TCP socket pair. Frames really cross
      the kernel; sends interleave writing with draining the peer socket
      so a frame larger than the socket buffers cannot deadlock the
      single-threaded process. *)

type direction = Alice_to_bob | Bob_to_alice

let direction_name = function Alice_to_bob -> "a->b" | Bob_to_alice -> "b->a"

(** Raised by raw operations once the channel is closed or the peer is
    gone; the resilience layer converts it into the typed, unrecoverable
    [Transport_error]. *)
exception Closed of string

(** Raised by the [tcp] backend when a peer keeps the channel alive but
    stops making frame progress — a partially received frame older than
    the stall window (slow-loris trickling), or a send loop that can
    neither write nor drain for the same window. The resilience layer
    maps it to [Transport_error {kind = Timeout}]. *)
exception Stalled of string

type raw = {
  send_frame : direction -> Bytes.t -> unit;
      (** push one encoded frame. @raise Closed on a dead channel. *)
  recv_frame : direction -> deadline:float -> Bytes.t option;
      (** pop the next frame travelling in [direction]; [None] when
          nothing arrived by [deadline] (absolute [Unix.gettimeofday]
          time). @raise Closed on a dead channel. *)
  close : unit -> unit;  (** idempotent *)
  kind : string;  (** backend name for error messages ("inproc", "tcp") *)
}

(* Physical frame sizes, observed once per frame pushed into a backend —
   retransmissions and chaos-duplicated frames included, since each
   crosses the wire again. *)
let m_frame_bytes =
  lazy
    (Secyan_metrics.histogram ~help:"encoded frame size in bytes at the raw transport"
       "secyan_net_frame_bytes")

let observe_frame frame =
  if Secyan_metrics.enabled () then
    Secyan_metrics.observe (Lazy.force m_frame_bytes) (float_of_int (Bytes.length frame))

(* --- in-process duplex queue --------------------------------------- *)

let inproc () =
  let queues = [| Queue.create (); Queue.create () |] in
  let index = function Alice_to_bob -> 0 | Bob_to_alice -> 1 in
  let closed = ref false in
  let check dir op =
    if !closed then
      raise (Closed (Printf.sprintf "inproc channel closed (%s %s)" op (direction_name dir)))
  in
  {
    send_frame =
      (fun dir frame ->
        check dir "send";
        observe_frame frame;
        Queue.push (Bytes.copy frame) queues.(index dir));
    recv_frame =
      (fun dir ~deadline:_ ->
        check dir "recv";
        Queue.take_opt queues.(index dir));
    close = (fun () -> closed := true);
    kind = "inproc";
  }

(* --- loopback TCP socket pair -------------------------------------- *)

(* Growable byte FIFO for the stream reassembly buffers. *)
module Bytebuf = struct
  type t = { mutable data : Bytes.t; mutable start : int; mutable len : int }

  let create () = { data = Bytes.create 4096; start = 0; len = 0 }

  let reserve t extra =
    let cap = Bytes.length t.data in
    if t.start + t.len + extra > cap then
      if t.len + extra <= cap then begin
        (* compact in place *)
        Bytes.blit t.data t.start t.data 0 t.len;
        t.start <- 0
      end
      else begin
        let cap' = max (t.len + extra) (2 * cap) in
        let data' = Bytes.create cap' in
        Bytes.blit t.data t.start data' 0 t.len;
        t.data <- data';
        t.start <- 0
      end

  (* Space for [read] to append into; commit with [grow]. *)
  let tail_slot t extra =
    reserve t extra;
    (t.data, t.start + t.len)

  let grow t n = t.len <- t.len + n

  let drop t n =
    t.start <- t.start + n;
    t.len <- t.len - n;
    if t.len = 0 then t.start <- 0

  let sub t n = Bytes.sub t.data t.start n
end

let chunk = 65536

let tcp ?(stall_timeout_s = 30.) () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let a =
    try
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen listener 1;
      let addr = Unix.getsockname listener in
      let a = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (* Loopback connect to a listening socket completes without a
         concurrent accept (the connection parks in the backlog). *)
      Unix.connect a addr;
      a
    with e ->
      Unix.close listener;
      raise e
  in
  let b, _ = Unix.accept listener in
  Unix.close listener;
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  (try Unix.setsockopt a Unix.TCP_NODELAY true; Unix.setsockopt b Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      (try Unix.close a with Unix.Unix_error _ -> ());
      (try Unix.close b with Unix.Unix_error _ -> ())
    end
  in
  (* Alice writes her frames on [a]; they surface on [b]. Bob writes on
     [b]; they surface on [a]. One reassembly buffer per direction. *)
  let fds = function
    | Alice_to_bob -> (a, b)
    | Bob_to_alice -> (b, a)
  in
  let bufs = [| Bytebuf.create (); Bytebuf.create () |] in
  let buf = function Alice_to_bob -> bufs.(0) | Bob_to_alice -> bufs.(1) in
  let check dir op =
    if !closed then
      raise (Closed (Printf.sprintf "tcp channel closed (%s %s)" op (direction_name dir)))
  in
  let die dir op e =
    close ();
    raise
      (Closed
         (Printf.sprintf "tcp %s %s failed: %s" op (direction_name dir)
            (Unix.error_message e)))
  in
  (* Drain whatever is pending on [rfd] into [dir]'s buffer; returns the
     number of bytes consumed. EOF means the peer end is gone. *)
  let drain dir rfd =
    let total = ref 0 in
    let eof = ref false in
    (try
       let continue = ref true in
       while !continue do
         let data, off = Bytebuf.tail_slot (buf dir) chunk in
         let n = Unix.read rfd data off chunk in
         if n = 0 then begin eof := true; continue := false end
         else begin
           Bytebuf.grow (buf dir) n;
           total := !total + n;
           if n < chunk then continue := false
         end
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error (e, _, _) -> die dir "read" e);
    if !eof then begin
      close ();
      raise (Closed (Printf.sprintf "tcp peer closed (recv %s)" (direction_name dir)))
    end;
    !total
  in
  let send_frame dir frame =
    check dir "send";
    observe_frame frame;
    let wfd, rfd = fds dir in
    let len = Bytes.length frame in
    let pos = ref 0 in
    let last_progress = ref (Unix.gettimeofday ()) in
    while !pos < len do
      (match Unix.write wfd frame !pos (min chunk (len - !pos)) with
      | n ->
          pos := !pos + n;
          last_progress := Unix.gettimeofday ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* Kernel buffers are full; the only in-flight bytes are our own
             (lock-step protocol), so drain the receiving end to make
             room. Select rather than spin when nothing is pending yet. A
             peer that neither accepts our bytes nor sends any for a whole
             stall window is wedged — fail typed instead of looping. *)
          if drain dir rfd = 0 then begin
            if Unix.gettimeofday () -. !last_progress > stall_timeout_s then begin
              close ();
              raise
                (Stalled
                   (Printf.sprintf "tcp send %s: no progress in %.1fs"
                      (direction_name dir) stall_timeout_s))
            end;
            ignore (Unix.select [ rfd ] [ wfd ] [] (Float.min 1.0 stall_timeout_s))
          end
          else last_progress := Unix.gettimeofday ()
      | exception Unix.Unix_error (e, _, _) -> die dir "write" e);
      ignore (drain dir rfd)
    done
  in
  (* Per-frame progress deadlines: absolute time the currently partial
     frame (per direction) was first seen, [nan] when no frame is in
     flight. A peer trickling bytes can stretch one frame forever against
     per-attempt timeouts alone; the stall clock starts when a frame's
     first bytes arrive and is *not* pushed forward by trickled progress,
     so every frame must complete within one stall window. *)
  let frame_started = [| Float.nan; Float.nan |] in
  let started = function Alice_to_bob -> 0 | Bob_to_alice -> 1 in
  let recv_frame dir ~deadline =
    check dir "recv";
    let _, rfd = fds dir in
    let b = buf dir in
    let i = started dir in
    let rec frame_ready () =
      match Frame.required b.Bytebuf.data ~pos:b.Bytebuf.start ~len:b.Bytebuf.len with
      | Error e ->
          close ();
          raise
            (Closed
               (Printf.sprintf "tcp stream desynchronized (%s): %s" (direction_name dir)
                  (Frame.error_to_string e)))
      | Ok (Some total) when b.Bytebuf.len >= total ->
          let frame = Bytebuf.sub b total in
          Bytebuf.drop b total;
          frame_started.(i) <- Float.nan;
          Some frame
      | Ok _ ->
          let now = Unix.gettimeofday () in
          if b.Bytebuf.len = 0 then frame_started.(i) <- Float.nan
          else if Float.is_nan frame_started.(i) then frame_started.(i) <- now
          else if now -. frame_started.(i) > stall_timeout_s then begin
            close ();
            raise
              (Stalled
                 (Printf.sprintf "tcp recv %s: partial frame made no progress in %.1fs"
                    (direction_name dir) stall_timeout_s))
          end;
          let wait = deadline -. now in
          if wait <= 0. then None
          else begin
            (* Wake up in time to enforce the stall window even when the
               caller's receive deadline is far away. *)
            let wait =
              if Float.is_nan frame_started.(i) then wait
              else Float.min wait (Float.max 0.01 (frame_started.(i) +. stall_timeout_s -. now))
            in
            (match Unix.select [ rfd ] [] [] wait with
            | [], _, _ -> ()
            | _ -> ignore (drain dir rfd));
            if deadline -. Unix.gettimeofday () <= 0. && Bytebuf.(b.len) = 0 then None
            else frame_ready ()
          end
    in
    frame_ready ()
  in
  { send_frame; recv_frame; close; kind = "tcp" }
