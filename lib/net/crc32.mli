(** CRC-32 (IEEE 802.3), the transport frame checksum. Detects line
    corruption; adversarial integrity is the protocol layer's job. *)

(** Initial value of a running checksum. *)
val empty : int

(** [update crc b ~pos ~len] extends a running checksum with a slice.
    @raise Invalid_argument if the slice lies outside [b]. *)
val update : int -> Bytes.t -> pos:int -> len:int -> int

(** Checksum of one slice; the 32-bit value as an [int].
    [digest (Bytes.of_string "123456789")] = [0xCBF43926]. *)
val digest : Bytes.t -> pos:int -> len:int -> int
