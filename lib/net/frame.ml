(** Wire framing for the two-party transport.

    Every logical message travels as one frame:

    {v
      offset  size  field
      0       2     magic "SY" (0x53 0x59)
      2       8     sequence number, little-endian int64
      10      4     payload length, little-endian
      14      n     payload
      14+n    4     CRC-32 over bytes [2, 14+n), little-endian
    v}

    The length field makes the format self-delimiting over a byte stream
    (TCP); the CRC covers sequence, length, and payload, so any bit flip
    downstream of the header surfaces as [Bad_crc] rather than as silent
    payload corruption or a stream desync. The sequence number is assigned
    once per logical message and reused verbatim by retransmissions, which
    is what lets the receiver deduplicate resends. *)

let magic0 = '\x53'
let magic1 = '\x59'
let header_len = 14
let trailer_len = 4
let overhead = header_len + trailer_len

(** Sanity cap on a single frame's payload (1 GiB). A length field above
    this is treated as corruption, not as an allocation request. *)
let max_payload = 1 lsl 30

(* Acceptance cap on *received* frames, enforced by [required] and
   [decode] before any reassembly buffer grows to hold the body. The
   format allows payloads up to [max_payload], but honest senders chunk
   protocol messages at [Envelope.max_body] (4 MiB), so anything larger
   on the receive path is a peer lying about sizes to drive an
   allocation — the grow-path OOM vector. The cap leaves slack above the
   envelope chunk for the envelope header and raw (non-enveloped)
   transfers such as handshake hellos. *)
let default_accept_limit = (1 lsl 22) + 256
let accept_limit = ref default_accept_limit

let set_accept_limit n =
  if n < 1 || n > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.set_accept_limit: %d outside [1, %d]" n max_payload);
  accept_limit := n

let set_u32 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let get_u32 b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)

let encode ~seq payload =
  let n = Bytes.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.encode: payload of %d bytes exceeds max_payload = %d" n max_payload);
  let b = Bytes.create (overhead + n) in
  Bytes.set b 0 magic0;
  Bytes.set b 1 magic1;
  Bytes.set_int64_le b 2 seq;
  set_u32 b 10 n;
  Bytes.blit payload 0 b header_len n;
  set_u32 b (header_len + n) (Crc32.digest b ~pos:2 ~len:(header_len - 2 + n));
  b

type error = Bad_magic | Bad_length | Bad_crc | Oversized

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_length -> "bad length"
  | Bad_crc -> "CRC mismatch"
  | Oversized -> "declared payload above the acceptance cap"

(** Total size of the frame starting at the head of [b] (header + payload
    + trailer), or [None] when fewer than [header_len] bytes are in view.
    [Error] when the header itself is implausible — a desynchronized or
    corrupted stream. Used by stream backends to know how many bytes to
    accumulate before {!decode}. *)
let required b ~pos ~len =
  if len < header_len then Ok None
  else if Bytes.get b pos <> magic0 || Bytes.get b (pos + 1) <> magic1 then Error Bad_magic
  else
    let n = get_u32 b (pos + 10) in
    if n < 0 || n > max_payload then Error Bad_length
    else if n > !accept_limit then Error Oversized
    else Ok (Some (overhead + n))

let decode b =
  let len = Bytes.length b in
  if len < overhead then Error Bad_length
  else if Bytes.get b 0 <> magic0 || Bytes.get b 1 <> magic1 then Error Bad_magic
  else
    let n = get_u32 b 10 in
    if n < 0 || n > max_payload || len <> overhead + n then Error Bad_length
    else if n > !accept_limit then Error Oversized
    else if get_u32 b (header_len + n) <> Crc32.digest b ~pos:2 ~len:(header_len - 2 + n) then
      Error Bad_crc
    else Ok (Bytes.get_int64_le b 2, Bytes.sub b header_len n)
