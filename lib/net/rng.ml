(** Minimal splitmix64 generator. The net library sits below the crypto
    library, so it carries its own tiny deterministic source for schedule
    layout, corruption positions, and backoff jitter — none of which may
    touch (or depend on) the protocol's randomness. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform draw in [\[0, bound)]; [bound] must be positive. Rejection
    sampling over the top 63 bits (mirroring [Prg.below]): the final
    partial block of the 63-bit range is rejected, so chaos-schedule
    positions and backoff jitter are exactly uniform instead of carrying
    the [Int64.rem] modulo bias of earlier revisions. *)
let below t bound =
  if bound <= 0 then
    invalid_arg (Printf.sprintf "Rng.below: bound = %d, expected a positive integer" bound);
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()
