(** Deterministic, seeded fault injection over a raw transport. Faults
    are keyed by message index (a global counter of send attempts,
    retransmissions included). A spec entry [kind:n] schedules one burst
    of [n] consecutive faulted indices; bursts are laid out in spec order
    with seeded gaps, so [(spec, seed)] names one reproducible schedule.
    [disconnect:i] closes the channel permanently at message index [i].

    Recoverability is therefore legible from the spec: a burst shorter
    than the retry budget is survivable (the retransmission escapes the
    burst); a [corrupt] or [drop] burst at least as long as the budget —
    or any [disconnect] — is not. *)

type fault = Drop | Duplicate | Corrupt | Delay | Disconnect

val fault_name : fault -> string

type spec = (fault * int) list

(** Parse ["drop:3,delay:5,disconnect:40"]-style schedules. [dup] is an
    accepted alias for [duplicate]. *)
val parse_spec : string -> (spec, string) result

val spec_to_string : spec -> string

(** [wrap ~seed ~spec raw] returns the fault-injecting transport and a
    thunk reporting how many faults of each kind actually fired.
    [on_inject] (if given) observes each injection as [(fault, index)]. *)
val wrap :
  ?seed:int64 ->
  ?on_inject:(fault -> int -> unit) ->
  spec:spec ->
  Transport.raw ->
  Transport.raw * (unit -> (fault * int) list)
