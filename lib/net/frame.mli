(** Wire framing: [magic(2) | seq(8 LE) | len(4 LE) | payload | crc32(4 LE)].
    The CRC covers sequence, length, and payload; the sequence number is
    per logical message and reused by retransmissions so receivers can
    deduplicate. *)

val header_len : int
val overhead : int

(** Sanity cap on one payload (1 GiB); larger length fields are treated as
    corruption. *)
val max_payload : int

(** Acceptance cap on received frames (default [Envelope.max_body] plus
    slack, i.e. ~4 MiB): {!required} and {!decode} reject a declared
    payload length above it as [Oversized] {e before} any reassembly
    buffer grows to hold the body. Honest senders chunk protocol messages
    below the cap, so only a peer lying about sizes trips it. *)
val default_accept_limit : int

(** Adjust the acceptance cap (tests lower it; deployments may raise it
    up to {!max_payload}).
    @raise Invalid_argument outside [[1, max_payload]]. *)
val set_accept_limit : int -> unit

(** @raise Invalid_argument if the payload exceeds {!max_payload}. *)
val encode : seq:int64 -> Bytes.t -> Bytes.t

type error = Bad_magic | Bad_length | Bad_crc | Oversized

val error_to_string : error -> string

(** Total frame size at the head of the slice ([Ok None] when fewer than
    {!header_len} bytes are in view; [Error] on an implausible header,
    i.e. a desynchronized stream). *)
val required : Bytes.t -> pos:int -> len:int -> (int option, error) result

(** Decode one complete frame to [(seq, payload)]. *)
val decode : Bytes.t -> (int64 * Bytes.t, error) result
