(** Typed message envelope: the trust boundary for everything a peer
    sends inside a {!Frame} payload.

    Every protocol-level message travels as one envelope:

    {v
      offset  size  field
      0       1     envelope format version (currently 1)
      1       1     message kind tag
      2       4     declared body length, little-endian
      6       n     body
    v}

    The declared length is validated against the kind's hard cap {e
    before} any body is copied or buffered, so a peer lying about sizes
    is rejected with a typed error instead of driving an allocation. The
    version byte makes the format evolvable: an unknown version is a typed
    rejection, never a guess. The envelope deliberately carries no CRC —
    it rides inside a {!Frame}, whose CRC-32 already covers it; what the
    envelope adds is {e semantic} validation (kind, size, version) of
    frames that are bitwise intact but wrong, which is exactly what a
    Byzantine peer sends and a checksum cannot catch. *)

type kind = Hello | Share | Ot | Oprf | Psi | Oep | Gc | Reveal | Op

let all_kinds = [ Hello; Share; Ot; Oprf; Psi; Oep; Gc; Reveal; Op ]

let kind_name = function
  | Hello -> "hello"
  | Share -> "share"
  | Ot -> "ot"
  | Oprf -> "oprf"
  | Psi -> "psi"
  | Oep -> "oep"
  | Gc -> "gc"
  | Reveal -> "reveal"
  | Op -> "op"

let kind_tag = function
  | Hello -> 0
  | Share -> 1
  | Ot -> 2
  | Oprf -> 3
  | Psi -> 4
  | Oep -> 5
  | Gc -> 6
  | Reveal -> 7
  | Op -> 8

let kind_of_tag = function
  | 0 -> Some Hello
  | 1 -> Some Share
  | 2 -> Some Ot
  | 3 -> Some Oprf
  | 4 -> Some Psi
  | 5 -> Some Oep
  | 6 -> Some Gc
  | 7 -> Some Reveal
  | 8 -> Some Op
  | _ -> None

let version = 1
let header_len = 6

(* Hard cap on one envelope body (4 MiB). Larger logical messages are
   chunked by the sender (see [Context.wire_of]); a declared length above
   the cap is a protocol violation, rejected before allocation. *)
let max_body = 1 lsl 22

(* Handshake hellos are tiny (a session id, an epoch, a version); a
   "hello" claiming kilobytes is an attack, not a session id. *)
let max_hello = 4096

let kind_cap = function Hello -> max_hello | _ -> max_body

type error =
  | Bad_version of { got : int }
  | Unknown_kind of { tag : int }
  | Truncated of { have : int }  (** payload shorter than the 6-byte header *)
  | Length_mismatch of { declared : int; actual : int }
  | Oversized of { kind : kind; declared : int; limit : int }

let error_to_string = function
  | Bad_version { got } -> Printf.sprintf "envelope version %d (expected %d)" got version
  | Unknown_kind { tag } -> Printf.sprintf "unknown message kind tag %d" tag
  | Truncated { have } ->
      Printf.sprintf "truncated envelope: %d bytes, header needs %d" have header_len
  | Length_mismatch { declared; actual } ->
      Printf.sprintf "length field lies: declares %d body bytes, %d present" declared actual
  | Oversized { kind; declared; limit } ->
      Printf.sprintf "oversized %s: declares %d body bytes, cap is %d" (kind_name kind)
        declared limit

let encode ~kind body =
  let n = Bytes.length body in
  if n > kind_cap kind then
    invalid_arg
      (Printf.sprintf "Envelope.encode: %s body of %d bytes exceeds cap %d" (kind_name kind)
         n (kind_cap kind));
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 (Char.chr version);
  Bytes.set b 1 (Char.chr (kind_tag kind));
  Bytes.set b 2 (Char.chr (n land 0xFF));
  Bytes.set b 3 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 4 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 5 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.blit body 0 b header_len n;
  b

(* Validate version, kind, and declared length from the header alone —
   the pre-allocation gate. Safe to call on any payload. *)
let check_header b =
  let have = Bytes.length b in
  if have < header_len then Error (Truncated { have })
  else
    let v = Char.code (Bytes.get b 0) in
    if v <> version then Error (Bad_version { got = v })
    else
      let tag = Char.code (Bytes.get b 1) in
      match kind_of_tag tag with
      | None -> Error (Unknown_kind { tag })
      | Some kind ->
          let declared =
            Char.code (Bytes.get b 2)
            lor (Char.code (Bytes.get b 3) lsl 8)
            lor (Char.code (Bytes.get b 4) lsl 16)
            lor (Char.code (Bytes.get b 5) lsl 24)
          in
          if declared < 0 || declared > kind_cap kind then
            Error (Oversized { kind; declared; limit = kind_cap kind })
          else Ok (kind, declared)

let decode b =
  match check_header b with
  | Error e -> Error e
  | Ok (kind, declared) ->
      let actual = Bytes.length b - header_len in
      if declared <> actual then Error (Length_mismatch { declared; actual })
      else Ok (kind, Bytes.sub b header_len declared)
