(** Minimal splitmix64 generator for transport-internal randomness
    (fault-schedule layout, corruption positions, backoff jitter) —
    deliberately independent of the protocol's randomness. *)

type t

val create : int64 -> t
val next : t -> int64

(** Uniform draw in [\[0, bound)] (rejection-sampled, no modulo bias).
    @raise Invalid_argument unless [bound > 0]. *)
val below : t -> int -> int
