(** Typed message envelope inside each {!Frame} payload:
    [version(1) | kind(1) | body length(4 LE) | body]. The trust boundary
    for peer data — version, kind, and declared length are validated
    before any body bytes are copied, so a lying length field is a typed
    rejection, never an allocation. *)

(** Message kinds, one per class of secure-Yannakakis traffic: the resume
    handshake hello, secret-share distribution, the OT / OPRF / PSI / OEP
    primitives, garbled-circuit material, result reveals, and generic
    operator traffic. *)
type kind = Hello | Share | Ot | Oprf | Psi | Oep | Gc | Reveal | Op

val all_kinds : kind list
val kind_name : kind -> string
val kind_tag : kind -> int
val kind_of_tag : int -> kind option

(** Envelope format version written by {!encode} and required by
    {!decode}. *)
val version : int

val header_len : int

(** Hard cap on one envelope body (4 MiB). Larger logical messages are
    chunked by the sender; a declared length above the cap is rejected
    before allocation. *)
val max_body : int

(** Tighter cap for handshake hellos. *)
val max_hello : int

(** Per-kind body cap: {!max_hello} for [Hello], {!max_body} otherwise. *)
val kind_cap : kind -> int

type error =
  | Bad_version of { got : int }
  | Unknown_kind of { tag : int }
  | Truncated of { have : int }  (** payload shorter than the 6-byte header *)
  | Length_mismatch of { declared : int; actual : int }
  | Oversized of { kind : kind; declared : int; limit : int }

val error_to_string : error -> string

(** @raise Invalid_argument when [body] exceeds the kind's cap. *)
val encode : kind:kind -> Bytes.t -> Bytes.t

(** Validate version, kind tag, and declared length from the first
    {!header_len} bytes alone — the pre-allocation gate. *)
val check_header : Bytes.t -> (kind * int, error) result

(** Full decode: {!check_header} plus an exact declared/actual length
    match; only then is the body copied out. *)
val decode : Bytes.t -> (kind * Bytes.t, error) result
