(** Deterministic, seeded fault injection over a raw transport.

    The wrapper intercepts [send_frame] and assigns faults by {e message
    index}: a global counter of send attempts (retransmissions included,
    so a fault burst as long as the retry budget is exactly what makes a
    message unrecoverable). A spec entry [kind:n] schedules one {e burst}
    of [n] consecutive indices carrying [kind]; bursts are laid out in
    spec order, separated by seeded gaps, so a given [(spec, seed)] pair
    names one reproducible schedule. [disconnect:i] is special: the
    channel closes permanently at index [i].

    Fault semantics:
    - [drop]: the frame is never transmitted (the receiver times out).
    - [duplicate]: the frame is transmitted twice (the receiver must
      deduplicate by sequence number).
    - [corrupt]: a payload bit (or, for empty payloads, a CRC bit) is
      flipped in a copy; the receiver's CRC check rejects the frame.
    - [delay]: the frame is held back and released just before the next
      send in its direction — the receiver times out, the retransmission
      races the original, and the loser is deduplicated.
    - [disconnect]: the channel closes; every later operation raises
      {!Transport.Closed}.

    Corruption flips bits strictly after the frame header so stream
    backends stay parseable — the damage is CRC-detectable payload rot,
    not a stream desync (which [tcp] treats as fatal). *)

type fault = Drop | Duplicate | Corrupt | Delay | Disconnect

let fault_name = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Corrupt -> "corrupt"
  | Delay -> "delay"
  | Disconnect -> "disconnect"

type spec = (fault * int) list

let parse_spec s =
  let entry e =
    match String.index_opt e ':' with
    | None -> Error (Printf.sprintf "Chaos.parse_spec: %S is not of the form kind:n" e)
    | Some i ->
        let kind = String.sub e 0 i and count = String.sub e (i + 1) (String.length e - i - 1) in
        let fault =
          match kind with
          | "drop" -> Ok Drop
          | "duplicate" | "dup" -> Ok Duplicate
          | "corrupt" -> Ok Corrupt
          | "delay" -> Ok Delay
          | "disconnect" -> Ok Disconnect
          | other ->
              Error
                (Printf.sprintf
                   "Chaos.parse_spec: unknown fault %S (expected drop, duplicate, corrupt, \
                    delay or disconnect)"
                   other)
        in
        match fault with
        | Error e -> Error e
        | Ok f -> (
            match int_of_string_opt count with
            | Some n when n >= 0 -> Ok (f, n)
            | _ ->
                Error
                  (Printf.sprintf "Chaos.parse_spec: count %S is not a non-negative integer"
                     count))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: _ ->
        Error
          (Printf.sprintf "Chaos.parse_spec: empty entry in %S (expected kind:n[,kind:n...])"
             s)
    | e :: rest -> ( match entry e with Ok x -> go (x :: acc) rest | Error _ as e -> e)
  in
  match String.trim s with "" -> Ok [] | trimmed -> go [] (String.split_on_char ',' trimmed)

let spec_to_string spec =
  String.concat "," (List.map (fun (f, n) -> Printf.sprintf "%s:%d" (fault_name f) n) spec)

type t = {
  schedule : (int, fault) Hashtbl.t;  (* message index -> fault *)
  disconnect_at : int option;
  prg : Rng.t;
  mutable idx : int;                  (* next message index *)
  mutable disconnected : bool;
  delayed : (Transport.direction * Bytes.t) Queue.t;
  mutable injected : (fault * int) list;  (* realized fault counts *)
  on_inject : fault -> int -> unit;
}

let record t fault =
  t.injected <-
    (match List.assoc_opt fault t.injected with
    | None -> (fault, 1) :: t.injected
    | Some n -> (fault, n + 1) :: List.remove_assoc fault t.injected);
  t.on_inject fault (t.idx - 1)

let corrupt_copy t frame =
  let b = Bytes.copy frame in
  let len = Bytes.length b in
  (* Flip one bit after the header: in the payload when there is one,
     otherwise in the CRC trailer. Headers stay intact so stream framing
     survives and the damage is exactly CRC-detectable. *)
  let lo = Frame.header_len in
  let pos = lo + Rng.below t.prg (len - lo) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl Rng.below t.prg 8)));
  b

let wrap ?(seed = 1L) ?(on_inject = fun _ _ -> ()) ~spec raw =
  let prg = Rng.create seed in
  let schedule = Hashtbl.create 64 in
  let disconnect_at = ref None in
  let cursor = ref 0 in
  List.iter
    (fun (fault, n) ->
      match fault with
      | Disconnect -> if !disconnect_at = None then disconnect_at := Some n
      | _ ->
          let start = !cursor + Rng.below prg 8 in
          for i = start to start + n - 1 do
            if not (Hashtbl.mem schedule i) then Hashtbl.add schedule i fault
          done;
          cursor := start + n + Rng.below prg 8)
    spec;
  let t =
    {
      schedule;
      disconnect_at = !disconnect_at;
      prg;
      idx = 0;
      disconnected = false;
      delayed = Queue.create ();
      injected = [];
      on_inject;
    }
  in
  let check () =
    if t.disconnected then raise (Transport.Closed "chaos: injected disconnect")
  in
  let flush_delayed dir =
    (* Release frames delayed in [dir] just before the next send there. *)
    let rest = Queue.create () in
    Queue.iter
      (fun (d, frame) -> if d = dir then raw.Transport.send_frame dir frame else Queue.push (d, frame) rest)
      t.delayed;
    Queue.clear t.delayed;
    Queue.transfer rest t.delayed
  in
  let send_frame dir frame =
    check ();
    let i = t.idx in
    t.idx <- i + 1;
    (match t.disconnect_at with
    | Some at when i >= at ->
        t.disconnected <- true;
        record t Disconnect;
        raw.Transport.close ();
        raise (Transport.Closed "chaos: injected disconnect")
    | _ -> ());
    flush_delayed dir;
    match Hashtbl.find_opt t.schedule i with
    | None -> raw.Transport.send_frame dir frame
    | Some Drop -> record t Drop
    | Some Duplicate ->
        record t Duplicate;
        raw.Transport.send_frame dir frame;
        raw.Transport.send_frame dir frame
    | Some Corrupt ->
        record t Corrupt;
        raw.Transport.send_frame dir (corrupt_copy t frame)
    | Some Delay ->
        record t Delay;
        Queue.push (dir, Bytes.copy frame) t.delayed
    | Some Disconnect -> assert false (* never scheduled by index *)
  in
  let recv_frame dir ~deadline =
    check ();
    raw.Transport.recv_frame dir ~deadline
  in
  ( { Transport.send_frame; recv_frame; close = raw.Transport.close;
      kind = raw.Transport.kind ^ "+chaos" },
    fun () -> t.injected )
