(** Resilience layer: reliable logical transfers over an unreliable raw
    transport — per-attempt receive timeouts, bounded retransmission with
    exponential backoff and seeded jitter, idempotent resends via
    sequence-number deduplication, and typed failure. A transfer either
    delivers the payload intact or raises {!Transport_error}; it never
    hangs and never delivers silently wrong bytes (CRC-rejected frames
    are retried, then failed). *)

type error_kind =
  | Timeout  (** no intact frame arrived within the retry budget *)
  | Corrupt  (** frames kept arriving CRC-damaged until the budget ran out *)
  | Closed   (** the channel disconnected; not retried *)

val error_kind_name : error_kind -> string

exception
  Transport_error of {
    kind : error_kind;
    attempts : int;
    elapsed : float;  (** seconds spent inside the failing transfer *)
    detail : string;
  }

(** The two parties disagree on what is being resumed: incompatible
    protocol versions, different session ids, or different last-acked
    checkpoint epochs. *)
exception
  Resume_mismatch of {
    alice_session : string;
    alice_epoch : int;
    alice_version : int;
    bob_session : string;
    bob_epoch : int;
    bob_version : int;
  }

(** Protocol compatibility version announced in every resume hello;
    peers announcing a different one are rejected with
    {!Resume_mismatch} before any state is exchanged. *)
val protocol_version : int

(** Cap on a resume-hello session identity string (bytes); longer
    identities are rejected before any substring is allocated. *)
val max_identity : int

type event = Retry | Timeout_hit | Corrupt_frame | Duplicate_dropped

type config = {
  timeout : float;  (** per-attempt receive wait, seconds *)
  max_attempts : int;
  backoff_base : float;  (** first backoff, seconds; doubles per retry *)
  backoff_max : float;
  jitter : float;  (** fraction of the backoff added as seeded jitter *)
  sleep : float -> unit;
      (** how to wait out a backoff; [ignore] suits the in-process
          backend (instantaneous timeouts), [Unix.sleepf] sockets. *)
}

(** timeout 0.25 s, 5 attempts, 2 ms base / 50 ms cap backoff, 0.5
    jitter, no real sleeping. *)
val default_config : config

type stats = {
  transfers : int;
  retries : int;
  timeouts : int;
  corrupt_frames : int;
  duplicates_dropped : int;
}

type t

(** @raise Invalid_argument unless [config.max_attempts >= 1]. *)
val create : ?config:config -> ?seed:int64 -> Transport.raw -> t

(** At most one listener; observes every resilience event as it happens
    (the tracing layer maps them onto typed counters). *)
val set_listener : t -> (event -> unit) option -> unit

(** Attach (or detach) the owning query's cancel token. With a token
    attached, every {!transfer} polls it before each attempt (raising
    [Secyan_deadline.Cancelled] when fired) and caps its per-attempt
    receive waits and backoff sleeps by the token's remaining wall-clock
    budget — a retry loop never outlives the query deadline. *)
val set_cancel : t -> Secyan_deadline.t option -> unit

(** The deterministic per-attempt jitter fraction in [0, 1), a pure hash
    of (seed, sequence number, attempt). Exposed so tests can pin that
    backoff jitter is reproducible from the transport seed alone yet
    distinct across attempts and transfers (desynchronized retry
    storms). *)
val jitter_frac : seed:int64 -> seq:int64 -> attempt:int -> float

(** Move one logical message in [dir] and return the received payload.
    @raise Transport_error after the retry budget is exhausted or on
    disconnect. *)
val transfer : t -> dir:Transport.direction -> Bytes.t -> Bytes.t

val stats : t -> stats

(** The four sequence counters (next send a->b, next send b->a, next
    expected a->b, next expected b->a) for checkpoint capture. *)
val seq_state : t -> int64 array

(** Overwrite the sequence counters with a captured {!seq_state}, so
    post-resume frames carry the sequence numbers an uninterrupted run
    would have used. @raise Invalid_argument unless 4 words long. *)
val restore_seq_state : t -> int64 array -> unit

(** Session-resume handshake over a freshly (re)connected channel, before
    any protocol traffic: each party transfers its (protocol version,
    session id, last-acked checkpoint epoch) to the other — as a typed
    [Hello] envelope with the identity capped at {!max_identity} — and
    both verify agreement on where to restart.
    [alice_version]/[bob_version] default to {!protocol_version} (tests
    inject skew through them). The handshake's frames are transport
    chatter (below the protocol's cost accounting) and its sequence
    numbers are overwritten by the {!restore_seq_state} that follows.
    @raise Resume_mismatch when the versions or pairs disagree.
    @raise Transport_error on an undeliverable or undecodable hello.
    @raise Invalid_argument when a local identity exceeds
    {!max_identity}. *)
val resume_handshake :
  ?alice_version:int -> ?bob_version:int -> t -> alice:string * int -> bob:string * int ->
  unit

(** Backend name ("inproc", "tcp", "inproc+chaos", ...). *)
val kind : t -> string

val close : t -> unit
