(** Resilience layer: reliable logical transfers over an unreliable raw
    transport — per-attempt receive timeouts, bounded retransmission with
    exponential backoff and seeded jitter, idempotent resends via
    sequence-number deduplication, and typed failure. A transfer either
    delivers the payload intact or raises {!Transport_error}; it never
    hangs and never delivers silently wrong bytes (CRC-rejected frames
    are retried, then failed). *)

type error_kind =
  | Timeout  (** no intact frame arrived within the retry budget *)
  | Corrupt  (** frames kept arriving CRC-damaged until the budget ran out *)
  | Closed   (** the channel disconnected; not retried *)

val error_kind_name : error_kind -> string

exception
  Transport_error of {
    kind : error_kind;
    attempts : int;
    elapsed : float;  (** seconds spent inside the failing transfer *)
    detail : string;
  }

type event = Retry | Timeout_hit | Corrupt_frame | Duplicate_dropped

type config = {
  timeout : float;  (** per-attempt receive wait, seconds *)
  max_attempts : int;
  backoff_base : float;  (** first backoff, seconds; doubles per retry *)
  backoff_max : float;
  jitter : float;  (** fraction of the backoff added as seeded jitter *)
  sleep : float -> unit;
      (** how to wait out a backoff; [ignore] suits the in-process
          backend (instantaneous timeouts), [Unix.sleepf] sockets. *)
}

(** timeout 0.25 s, 5 attempts, 2 ms base / 50 ms cap backoff, 0.5
    jitter, no real sleeping. *)
val default_config : config

type stats = {
  transfers : int;
  retries : int;
  timeouts : int;
  corrupt_frames : int;
  duplicates_dropped : int;
}

type t

(** @raise Invalid_argument unless [config.max_attempts >= 1]. *)
val create : ?config:config -> ?seed:int64 -> Transport.raw -> t

(** At most one listener; observes every resilience event as it happens
    (the tracing layer maps them onto typed counters). *)
val set_listener : t -> (event -> unit) option -> unit

(** Move one logical message in [dir] and return the received payload.
    @raise Transport_error after the retry budget is exhausted or on
    disconnect. *)
val transfer : t -> dir:Transport.direction -> Bytes.t -> Bytes.t

val stats : t -> stats

(** Backend name ("inproc", "tcp", "inproc+chaos", ...). *)
val kind : t -> string

val close : t -> unit
