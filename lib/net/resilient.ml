(** The resilience layer: reliable logical transfers over an unreliable
    raw transport.

    One {!transfer} moves one logical message. The payload is framed with
    a fresh per-direction sequence number and sent; the receiving side
    (same process — the runtime plays both parties) then waits for the
    frame with the expected sequence number under a per-attempt timeout.
    A timed-out or CRC-rejected attempt triggers a retransmission {e with
    the same sequence number} after an exponential backoff with
    deterministic jitter; the receiver drops already-delivered sequence
    numbers, so retransmissions racing a delayed original are idempotent.
    After [max_attempts] failures the transfer raises the typed
    {!Transport_error} — never a hang, never a silently wrong delivery:
    the failure names its kind, the attempts spent, and the elapsed time,
    so protocol phases can surface a clean, attributable fault.

    The state machine per transfer:

    {v
      SEND --(recv ok, seq match)--> DELIVERED
      SEND --(timeout | bad CRC)--> BACKOFF --(attempts left)--> SEND
      BACKOFF --(attempts exhausted)--> error Timeout | Corrupt
      any --(Transport.Closed)--> error Closed   (no retry: unrecoverable)
    v}
*)

type error_kind = Timeout | Corrupt | Closed

let error_kind_name = function
  | Timeout -> "timeout"
  | Corrupt -> "corrupt"
  | Closed -> "closed"

exception
  Transport_error of {
    kind : error_kind;
    attempts : int;
    elapsed : float;  (** seconds spent inside the failing transfer *)
    detail : string;
  }

let () =
  Printexc.register_printer (function
    | Transport_error { kind; attempts; elapsed; detail } ->
        Some
          (Printf.sprintf "Transport_error { kind = %s; attempts = %d; elapsed = %.3fs; %s }"
             (error_kind_name kind) attempts elapsed detail)
    | _ -> None)

exception
  Resume_mismatch of {
    alice_session : string;
    alice_epoch : int;
    alice_version : int;
    bob_session : string;
    bob_epoch : int;
    bob_version : int;
  }

let () =
  Printexc.register_printer (function
    | Resume_mismatch { alice_session; alice_epoch; alice_version; bob_session; bob_epoch;
                        bob_version } ->
        Some
          (Printf.sprintf
             "Resume_mismatch { alice = (%S, epoch %d, v%d); bob = (%S, epoch %d, v%d) }"
             alice_session alice_epoch alice_version bob_session bob_epoch bob_version)
    | _ -> None)

(* Frames rejected at the trust boundary (CRC-damaged, misframed,
   oversized, or undecodable hellos) and handshake disagreements, for the
   operator-facing metrics surface. Registered eagerly so the names
   appear in every metrics snapshot, violated or not. *)
let m_rejected_frames =
  Secyan_metrics.counter ~help:"frames rejected at the receive trust boundary"
    "secyan_rejected_frames_total"

let m_handshake_mismatches =
  Secyan_metrics.counter ~help:"resume handshakes rejected for session/epoch/version disagreement"
    "secyan_handshake_mismatches_total"

type event = Retry | Timeout_hit | Corrupt_frame | Duplicate_dropped

type config = {
  timeout : float;  (** per-attempt receive wait, seconds *)
  max_attempts : int;
  backoff_base : float;  (** first backoff, seconds; doubles per retry *)
  backoff_max : float;
  jitter : float;  (** fraction of the backoff added as seeded jitter *)
  sleep : float -> unit;
      (** how to wait out a backoff. [ignore] for the in-process backend
          (its timeouts are instantaneous, so real sleeping would only
          slow tests); [Unix.sleepf] for sockets. *)
}

let default_config =
  { timeout = 0.25; max_attempts = 5; backoff_base = 0.002; backoff_max = 0.05;
    jitter = 0.5; sleep = ignore }

type stats = {
  transfers : int;
  retries : int;
  timeouts : int;
  corrupt_frames : int;
  duplicates_dropped : int;
}

type t = {
  raw : Transport.raw;
  config : config;
  jitter_seed : int64;  (* jitter only; never touches protocol randomness *)
  mutable cancel : Secyan_deadline.t option;
      (* the owning query's cancel token: transfers poll it per attempt
         and cap their waits by its remaining budget *)
  send_seq : int64 array;  (* next seq per direction, index 0 = a->b *)
  expect_seq : int64 array;  (* next undelivered seq per direction *)
  mutable listener : (event -> unit) option;
  mutable transfers : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable corrupt_frames : int;
  mutable duplicates_dropped : int;
}

let dir_index = function Transport.Alice_to_bob -> 0 | Transport.Bob_to_alice -> 1

let create ?(config = default_config) ?(seed = 1L) raw =
  if config.max_attempts < 1 then
    invalid_arg
      (Printf.sprintf "Resilient.create: max_attempts = %d, expected >= 1" config.max_attempts);
  {
    raw;
    config;
    jitter_seed = seed;
    cancel = None;
    send_seq = [| 0L; 0L |];
    expect_seq = [| 0L; 0L |];
    listener = None;
    transfers = 0;
    retries = 0;
    timeouts = 0;
    corrupt_frames = 0;
    duplicates_dropped = 0;
  }

let set_listener t l = t.listener <- l
let set_cancel t c = t.cancel <- c

let event t ev =
  (match ev with
  | Retry -> t.retries <- t.retries + 1
  | Timeout_hit -> t.timeouts <- t.timeouts + 1
  | Corrupt_frame -> t.corrupt_frames <- t.corrupt_frames + 1
  | Duplicate_dropped -> t.duplicates_dropped <- t.duplicates_dropped + 1);
  match t.listener with None -> () | Some f -> f ev

let stats t =
  {
    transfers = t.transfers;
    retries = t.retries;
    timeouts = t.timeouts;
    corrupt_frames = t.corrupt_frames;
    duplicates_dropped = t.duplicates_dropped;
  }

let kind t = t.raw.Transport.kind

let close t = t.raw.Transport.close ()

(* Stateless per-attempt jitter. Early versions drew jitter from a
   shared stream, which re-seeded identically on every attempt within a
   send — retry storms across transfers stayed in lockstep. Hashing
   (seed, seq, attempt) instead gives every attempt of every transfer
   its own fraction, reproducible from the seed alone (the determinism
   test pins this) while desynchronizing concurrent retriers. *)
let splitmix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let jitter_frac ~seed ~seq ~attempt =
  let h =
    splitmix64
      (Int64.logxor seed
         (splitmix64 (Int64.logxor seq (splitmix64 (Int64.of_int attempt)))))
  in
  (* top 53 bits -> [0, 1) exactly representable in a float *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

(* Remaining wall-clock budget of the owning query, [infinity] when the
   transfer is not under a constrained token. *)
let remaining_budget_s t =
  match t.cancel with
  | Some c when Secyan_deadline.constrained c -> Secyan_deadline.remaining_s c
  | _ -> infinity

let backoff t ~seq attempt =
  let b = t.config.backoff_base *. (2. ** float_of_int (attempt - 1)) in
  let b = Float.min b t.config.backoff_max in
  let j = t.config.jitter *. b *. jitter_frac ~seed:t.jitter_seed ~seq ~attempt in
  (* Never sleep past the query deadline: a backoff that outlives the
     budget only delays the typed cancellation. *)
  t.config.sleep (Float.min (b +. j) (Float.max 0. (remaining_budget_s t)))

(* One receive attempt: pop frames until the expected sequence number
   arrives or [deadline] passes. Stale sequence numbers are duplicates of
   already-delivered messages (dropped); CRC failures poison the attempt
   as [`Corrupt] but keep listening — the retransmission may already be
   queued behind the damaged frame. *)
let recv_attempt t dir ~deadline =
  let i = dir_index dir in
  let saw_corrupt = ref false in
  let rec go () =
    match t.raw.Transport.recv_frame dir ~deadline with
    | None -> if !saw_corrupt then `Corrupt else `Timeout
    | Some blob -> (
        match Frame.decode blob with
        | Error _ ->
            Secyan_metrics.add m_rejected_frames 1;
            event t Corrupt_frame;
            saw_corrupt := true;
            go ()
        | Ok (seq, payload) ->
            if Int64.compare seq t.expect_seq.(i) < 0 then begin
              event t Duplicate_dropped;
              go ()
            end
            else if Int64.equal seq t.expect_seq.(i) then begin
              t.expect_seq.(i) <- Int64.add seq 1L;
              `Delivered payload
            end
            else begin
              (* A sequence number from the future cannot occur in a
                 lock-step two-party run; treat it as line corruption. *)
              Secyan_metrics.add m_rejected_frames 1;
              event t Corrupt_frame;
              saw_corrupt := true;
              go ()
            end)
  in
  go ()

(* Per-transfer latency profile: every logical transfer's end-to-end
   seconds, and separately the end-to-end seconds of transfers that
   needed at least one retransmission (backoffs included) — the cost a
   flaky channel adds per recovered message. *)
let m_transfer_seconds =
  lazy
    (Secyan_metrics.histogram ~help:"end-to-end seconds per logical transfer"
       "secyan_net_transfer_seconds")

let m_retry_latency_seconds =
  lazy
    (Secyan_metrics.histogram
       ~help:"end-to-end seconds of transfers that needed retransmission"
       "secyan_net_retry_latency_seconds")

let transfer t ~dir payload =
  let i = dir_index dir in
  let seq = t.send_seq.(i) in
  t.send_seq.(i) <- Int64.add seq 1L;
  t.transfers <- t.transfers + 1;
  let frame = Frame.encode ~seq payload in
  let start = Unix.gettimeofday () in
  let fail kind detail attempts =
    raise
      (Transport_error
         { kind; attempts; elapsed = Unix.gettimeofday () -. start; detail })
  in
  let rec attempt n last =
    if n > t.config.max_attempts then
      let kind = match last with `Corrupt -> Corrupt | _ -> Timeout in
      fail kind
        (Printf.sprintf "detail = seq %Ld undelivered on %s (%s backend)" seq
           (Transport.direction_name dir) t.raw.Transport.kind)
        (n - 1)
    else begin
      (* Cooperative cancellation: poll the owning query's token before
         every attempt, so a transfer under an expired deadline (or an
         over-budget query) unwinds as [Cancelled] instead of burning the
         rest of its retry budget against a peer that may be fine. *)
      (match t.cancel with
      | Some c -> Secyan_deadline.check ~where:"net:transfer" c
      | None -> ());
      if n > 1 then begin
        event t Retry;
        backoff t ~seq (n - 1)
      end;
      match
        t.raw.Transport.send_frame dir frame;
        (* The attempt's receive wait respects the query's remaining
           budget, not just its own clock: with 10 s left, a 30 s
           [config.timeout] waits at most 10 s. *)
        recv_attempt t dir
          ~deadline:
            (Unix.gettimeofday ()
            +. Float.min t.config.timeout (remaining_budget_s t))
      with
      | `Delivered payload ->
          if Secyan_metrics.enabled () then begin
            let elapsed = Unix.gettimeofday () -. start in
            Secyan_metrics.observe (Lazy.force m_transfer_seconds) elapsed;
            if n > 1 then
              Secyan_metrics.observe (Lazy.force m_retry_latency_seconds) elapsed
          end;
          payload
      | `Timeout ->
          event t Timeout_hit;
          attempt (n + 1) `Timeout
      | `Corrupt -> attempt (n + 1) `Corrupt
      | exception Transport.Closed msg -> fail Closed ("detail = " ^ msg) n
      | exception Transport.Stalled msg ->
          (* A stalled channel made no frame progress for a whole stall
             window — no retry can help inside this transfer's budget. *)
          fail Timeout ("detail = " ^ msg) n
    end
  in
  attempt 1 `Timeout

(* --- session resume -------------------------------------------------- *)

(** The four sequence counters as one array: next send seq a->b, next
    send seq b->a, next expected seq a->b, next expected seq b->a. A
    checkpoint captures them with {!seq_state} and a resumed run replays
    them with {!restore_seq_state}, so post-resume frames carry the same
    sequence numbers an uninterrupted run would have used. *)
let seq_state t = [| t.send_seq.(0); t.send_seq.(1); t.expect_seq.(0); t.expect_seq.(1) |]

let restore_seq_state t a =
  if Array.length a <> 4 then
    invalid_arg
      (Printf.sprintf "Resilient.restore_seq_state: %d state words, expected 4"
         (Array.length a));
  t.send_seq.(0) <- a.(0);
  t.send_seq.(1) <- a.(1);
  t.expect_seq.(0) <- a.(2);
  t.expect_seq.(1) <- a.(3)

(* Protocol compatibility version announced in every resume hello. Bump
   when the wire protocol changes incompatibly; peers announcing a
   different version are rejected before any state is exchanged. *)
let protocol_version = 1

(* Session ids are short fingerprint-derived strings; anything longer is
   a peer abusing the identity field as an allocation vector. *)
let max_identity = 1024

let hello_payload ?(version = protocol_version) (session, epoch) =
  if String.length session > max_identity then
    invalid_arg
      (Printf.sprintf "Resilient.hello_payload: session id of %d bytes exceeds cap %d"
         (String.length session) max_identity);
  let b = Buffer.create (String.length session + 10) in
  Buffer.add_uint16_be b (version land 0xFFFF);
  Buffer.add_int32_be b (Int32.of_int (String.length session));
  Buffer.add_string b session;
  Buffer.add_int32_be b (Int32.of_int epoch);
  Envelope.encode ~kind:Envelope.Hello (Buffer.to_bytes b)

(* Strict parse of an enveloped hello: kind must be [Hello], the identity
   length must respect [max_identity] *before* the substring is taken,
   and the body must contain exactly the declared fields. *)
let parse_hello payload =
  match Envelope.decode payload with
  | Error _ -> None
  | Ok (kind, _) when kind <> Envelope.Hello -> None
  | Ok (_, body) -> (
      try
        let version = Char.code (Bytes.get body 0) lsl 8 lor Char.code (Bytes.get body 1) in
        let n = Int32.to_int (Bytes.get_int32_be body 2) in
        if n < 0 || n > max_identity then raise Exit;
        if Bytes.length body <> 10 + n then raise Exit;
        let session = Bytes.sub_string body 6 n in
        let epoch = Int32.to_int (Bytes.get_int32_be body (6 + n)) in
        Some (version, session, epoch)
      with Invalid_argument _ | Exit -> None)

(* The session-resume handshake. Run it on a freshly (re)connected
   channel before any protocol traffic: each party transfers its
   (protocol version, session id, last-acked checkpoint epoch) hello to
   the other, and both verify the pair agrees on where to restart.
   Disagreement — incompatible protocol versions, different sessions, or
   different epochs — raises the typed {!Resume_mismatch}; a damaged or
   out-of-schema hello surfaces as {!Transport_error} through the normal
   retry machinery. The handshake runs below the protocol's cost
   accounting (its frames are transport chatter, like retransmissions,
   not protocol communication), and its sequence numbers are overwritten
   when the checkpointed {!seq_state} is restored immediately afterwards.
   Both simulated parties live in this process, so the exchange is two
   transfers over the real channel. [alice_version]/[bob_version] default
   to {!protocol_version}; tests inject skew through them. *)
let resume_handshake ?alice_version ?bob_version t ~alice ~bob =
  let a_hello =
    transfer t ~dir:Transport.Alice_to_bob (hello_payload ?version:alice_version alice)
  in
  let b_hello =
    transfer t ~dir:Transport.Bob_to_alice (hello_payload ?version:bob_version bob)
  in
  let corrupt detail =
    Secyan_metrics.add m_rejected_frames 1;
    raise
      (Transport_error { kind = Corrupt; attempts = 1; elapsed = 0.; detail = "detail = " ^ detail })
  in
  let a_recv =
    match parse_hello a_hello with
    | Some h -> h
    | None -> corrupt "undecodable resume hello (alice->bob)"
  in
  let b_recv =
    match parse_hello b_hello with
    | Some h -> h
    | None -> corrupt "undecodable resume hello (bob->alice)"
  in
  let alice_version, alice_session, alice_epoch = a_recv
  and bob_version, bob_session, bob_epoch = b_recv in
  if
    not
      (alice_version = bob_version
      && String.equal alice_session bob_session
      && alice_epoch = bob_epoch)
  then begin
    Secyan_metrics.add m_handshake_mismatches 1;
    raise
      (Resume_mismatch
         { alice_session; alice_epoch; alice_version; bob_session; bob_epoch; bob_version })
  end
