(** Cancellation tokens with optional wall-clock deadlines and per-query
    memory budgets — the spine of the supervision layer (DESIGN.md §15).

    A token is a single atomic cell shared by every participant of a
    query: the calling domain, pool workers claiming batch items, and
    transport retry loops. Whoever trips it first (explicit {!cancel},
    deadline expiry, or the memory-budget guard inside {!poll}) wins;
    every later observer sees the same {!reason}. Cancellation is
    cooperative — nothing is killed; code {!check}s the token at phase
    boundaries, batch-item claims, and transport waits, and unwinds with
    {!Cancelled} carrying the reason and the protocol location. *)

(** Why a token fired. *)
type reason =
  | Expired of { budget_s : float }  (** wall-clock deadline exceeded *)
  | Over_budget of { used_mb : float; budget_mb : float }
      (** major-heap footprint exceeded the query's memory budget *)
  | User of string  (** explicit cancellation, e.g. from a server front end *)

(** Raised by {!check}: [where] names the protocol phase or wait site
    that observed the cancellation (e.g. ["gc:shares"], ["net:transfer"]). *)
exception Cancelled of { reason : reason; where : string }

type t

(** A token that never fires on its own (no deadline, no budget). It can
    still be cancelled explicitly — {!constrained} stays [false], so hot
    loops may skip per-item polls and rely on phase-boundary checks. *)
val never : unit -> t

(** [create ?timeout_s ?memory_budget_mb ()] — a token that fires once
    [timeout_s] wall-clock seconds elapse or the process major heap
    exceeds [memory_budget_mb] MiB (sampled from [Gc.quick_stat] inside
    {!poll}/{!check}, throttled to ~5 ms). Omitted limits are absent,
    not zero. *)
val create : ?timeout_s:float -> ?memory_budget_mb:float -> unit -> t

(** True when the token can fire on its own (has a deadline or a memory
    budget) or already has. Pool batches only thread per-item polls for
    constrained tokens; an unconstrained token costs nothing per item. *)
val constrained : t -> bool

(** Trip the token. First caller wins and gets [true]; later calls (from
    any domain) are no-ops returning [false] — the reason never changes
    once set. Safe to call concurrently from multiple domains. *)
val cancel : t -> reason -> bool

(** The reason the token fired, if it has — without sampling clocks or
    GC stats (pure read, any domain). *)
val cancelled : t -> reason option

(** Like {!cancelled}, but first trips the token if its deadline has
    expired or its memory budget is exceeded. This is the per-item /
    per-wait probe: one atomic read when unconstrained or already
    fired; one clock read (and a throttled GC sample) otherwise. *)
val poll : t -> reason option

(** [check ?where t] — {!poll}, then raise {!Cancelled} if fired.
    [where] defaults to ["?"]. *)
val check : ?where:string -> t -> unit

(** Remaining wall-clock budget. [Int64.max_int] ns (resp. [infinity] s)
    when the token has no deadline; [0] once expired. Transport retries
    cap their own timeouts by this, so a retry loop never outlives the
    query budget. *)
val remaining_ns : t -> int64

val remaining_s : t -> float

(** {1 Deadline arithmetic}

    Exposed for property tests: absolute times are nanoseconds since the
    Unix epoch as [int64] (safe until year ~2262), and additions
    saturate instead of wrapping. *)

(** Current wall clock in ns since the epoch ([Unix.gettimeofday]). *)
val now_ns : unit -> int64

(** Saturating addition: clamps to [Int64.max_int] / [Int64.min_int] on
    overflow, so [now + huge_timeout] means "never" rather than a
    deadline in 1677. *)
val sat_add_ns : int64 -> int64 -> int64

(** Seconds to saturating nanoseconds ([<= 0.] maps to [0L], huge or
    [infinity] to [Int64.max_int]). *)
val ns_of_s : float -> int64

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
