(** Cancellation tokens: one atomic cell per query, cooperatively
    checked everywhere the protocol can block or loop. See the .mli for
    the contract and DESIGN.md §15 for how the layers thread it. *)

type reason =
  | Expired of { budget_s : float }
  | Over_budget of { used_mb : float; budget_mb : float }
  | User of string

exception Cancelled of { reason : reason; where : string }

type t = {
  deadline_ns : int64;  (* absolute, Int64.max_int = no deadline *)
  budget_s : float;  (* the configured timeout, for the Expired reason *)
  memory_budget_mb : float;  (* <= 0. = no budget *)
  state : reason option Atomic.t;
  mutable last_gc_sample_ns : int64;
      (* GC-sample throttle. Unsynchronized on purpose: a racy read can
         only cause an extra (harmless) sample, never a missed trip —
         once any domain observes the budget exceeded it cancels via the
         atomic [state]. *)
}

let reason_to_string = function
  | Expired { budget_s } -> Printf.sprintf "deadline expired (%gs budget)" budget_s
  | Over_budget { used_mb; budget_mb } ->
      Printf.sprintf "memory budget exceeded (%.1f MiB used, %.1f MiB budget)"
        used_mb budget_mb
  | User msg -> Printf.sprintf "cancelled: %s" msg

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

(* --- saturating ns arithmetic ------------------------------------------ *)

let sat_add_ns a b =
  let s = Int64.add a b in
  (* Two's-complement overflow: the sum of same-signed operands flipped
     sign. Clamp toward the operands' sign. *)
  if Int64.compare b 0L > 0 && Int64.compare s a < 0 then Int64.max_int
  else if Int64.compare b 0L < 0 && Int64.compare s a > 0 then Int64.min_int
  else s

let ns_of_s s =
  if s <= 0. then 0L
  else
    let f = s *. 1e9 in
    if f >= Int64.to_float Int64.max_int then Int64.max_int else Int64.of_float f

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* --- construction ------------------------------------------------------ *)

let make ~deadline_ns ~budget_s ~memory_budget_mb =
  { deadline_ns; budget_s; memory_budget_mb; state = Atomic.make None;
    last_gc_sample_ns = 0L }

let never () =
  make ~deadline_ns:Int64.max_int ~budget_s:infinity ~memory_budget_mb:0.

let create ?timeout_s ?memory_budget_mb () =
  let deadline_ns, budget_s =
    match timeout_s with
    | None -> (Int64.max_int, infinity)
    | Some s -> (sat_add_ns (now_ns ()) (ns_of_s s), s)
  in
  let memory_budget_mb =
    match memory_budget_mb with Some mb when mb > 0. -> mb | _ -> 0.
  in
  make ~deadline_ns ~budget_s ~memory_budget_mb

let cancelled t = Atomic.get t.state

let constrained t =
  Int64.compare t.deadline_ns Int64.max_int < 0
  || t.memory_budget_mb > 0.
  || Atomic.get t.state <> None

(* --- firing ------------------------------------------------------------ *)

let cancellations_total =
  lazy
    (Secyan_metrics.counter ~help:"cancel tokens fired, any reason"
       "secyan_cancellations_total")

let deadline_expired_total =
  lazy
    (Secyan_metrics.counter ~help:"cancel tokens fired by deadline expiry"
       "secyan_deadline_expired_total")

let over_budget_total =
  lazy
    (Secyan_metrics.counter ~help:"cancel tokens fired by the memory-budget guard"
       "secyan_over_budget_total")

let count_cancel reason =
  Secyan_metrics.add (Lazy.force cancellations_total) 1;
  match reason with
  | Expired _ -> Secyan_metrics.add (Lazy.force deadline_expired_total) 1
  | Over_budget _ -> Secyan_metrics.add (Lazy.force over_budget_total) 1
  | User _ -> ()

let cancel t reason =
  let won = Atomic.compare_and_set t.state None (Some reason) in
  if won then count_cancel reason;
  won

(* Major-heap footprint in MiB. [quick_stat] reads per-domain counters
   without forcing a collection; [heap_words] is the major heap, which
   is where every allocation over 256 words (all the label planes and
   arenas) lands directly. *)
let heap_mib () =
  let s = Gc.quick_stat () in
  float_of_int s.Gc.heap_words *. (float_of_int (Sys.word_size / 8) /. 1048576.)

let gc_sample_interval_ns = 5_000_000L (* 5 ms *)

let poll t =
  match Atomic.get t.state with
  | Some _ as r -> r
  | None ->
      if not (constrained t) then None
      else begin
        let now = now_ns () in
        if Int64.compare now t.deadline_ns >= 0 then
          ignore (cancel t (Expired { budget_s = t.budget_s }));
        if
          t.memory_budget_mb > 0.
          && Int64.compare (Int64.sub now t.last_gc_sample_ns)
               gc_sample_interval_ns >= 0
        then begin
          t.last_gc_sample_ns <- now;
          let used_mb = heap_mib () in
          if used_mb > t.memory_budget_mb then
            ignore
              (cancel t (Over_budget { used_mb; budget_mb = t.memory_budget_mb }))
        end;
        Atomic.get t.state
      end

let check ?(where = "?") t =
  match poll t with None -> () | Some reason -> raise (Cancelled { reason; where })

(* --- remaining budget -------------------------------------------------- *)

let remaining_ns t =
  if Int64.compare t.deadline_ns Int64.max_int >= 0 then Int64.max_int
  else
    let r = Int64.sub t.deadline_ns (now_ns ()) in
    if Int64.compare r 0L < 0 then 0L else r

let remaining_s t =
  let r = remaining_ns t in
  if Int64.compare r Int64.max_int >= 0 then infinity
  else Int64.to_float r *. 1e-9
