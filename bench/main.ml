(* Benchmark harness regenerating the paper's evaluation (§8.3).

   Figures 2-6: for each TPC-H query (Q3, Q10, Q18, Q8, Q9) and each
   dataset scale, print the series the paper plots — running time and
   communication of secure Yannakakis, of the garbled-circuit baseline
   (measured at the smallest scale, extrapolated by exact gate count
   elsewhere, as in the paper), and of the non-private plaintext run
   (communication = input size, §8.2).

   Also: design-choice ablations (PSI with clear vs secret-shared
   payloads; real vs simulated garbling) and Bechamel microbenches of the
   primitives. Select sections via argv: figure2..figure6, figures,
   ablations, micro, all. *)

open Secyan_crypto
open Secyan_relational
open Secyan_obs

let seed = 20210618L (* SIGMOD'21 *)

let line fmt = Printf.printf (fmt ^^ "\n%!")

let hrule () = line "%s" (String.make 100 '-')

(* ------------------------------------------------------------------ *)
(* Figure harness *)

type series_point = {
  scale : string;
  eff_kb : float;
  secyan_s : float;
  secyan_mb : float;
  rounds : int;
  gc_s : float;        (* extrapolated *)
  gc_mb : float;
  plain_s : float;
  plain_mb : float;
}

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every figure point is also accumulated as a
   JSON record and written to BENCH_1.json at exit (EXPERIMENTS.md
   documents the schema). *)

let bench_records : Json.t list ref = ref []

(* Depth-1 span breakdown of a traced run: one entry per protocol phase. *)
let phase_breakdown root =
  Json.List
    (List.map
       (fun (c : Span.t) ->
         let t = Span.tally c in
         Json.Obj
           [
             ("name", Json.Str c.Span.name);
             ("seconds", Json.Float c.Span.dur_s);
             ("alice_to_bob_bits", Json.Int t.Comm.alice_to_bob_bits);
             ("bob_to_alice_bits", Json.Int t.Comm.bob_to_alice_bits);
             ("rounds", Json.Int t.Comm.rounds);
           ])
       (Span.children root))

let record ~section ~query ~sf (p : series_point) ~phases =
  bench_records :=
    Json.Obj
      [
        ("section", Json.Str section);
        ("query", Json.Str query);
        ("scale", Json.Str p.scale);
        ("sf", Json.Float sf);
        ("eff_input_kb", Json.Float p.eff_kb);
        ("secyan_seconds", Json.Float p.secyan_s);
        ("secyan_mb", Json.Float p.secyan_mb);
        ("rounds", Json.Int p.rounds);
        ("gc_seconds_extrapolated", Json.Float p.gc_s);
        ("gc_mb_extrapolated", Json.Float p.gc_mb);
        ("plain_seconds", Json.Float p.plain_s);
        ("plain_mb", Json.Float p.plain_mb);
        ("phases", phases);
      ]
    :: !bench_records

let write_bench_json () =
  let path = "BENCH_1.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("seed", Json.Str (Int64.to_string seed));
        ("records", Json.List (List.rev !bench_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench_records)

let print_series title points =
  hrule ();
  line "%s" title;
  hrule ();
  line "%-6s %12s %10s %11s %7s %12s %13s %9s %10s" "scale" "eff-input-KB" "secyan-s"
    "secyan-MB" "rounds" "gc-s(extr.)" "gc-MB(extr.)" "plain-s" "plain-MB";
  List.iter
    (fun p ->
      line "%-6s %12.1f %10.3f %11.2f %7d %12.3g %13.3g %9.4f %10.3f" p.scale p.eff_kb
        p.secyan_s p.secyan_mb p.rounds p.gc_s p.gc_mb p.plain_s p.plain_mb)
    points;
  (* the paper's headline: who wins and by how much at the largest scale *)
  match List.rev points with
  | largest :: _ ->
      line "  -> at %s: garbled circuit / secure yannakakis = %.3gx time, %.3gx communication"
        largest.scale
        (largest.gc_s /. largest.secyan_s)
        (largest.gc_mb /. largest.secyan_mb)
  | [] -> ()

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Calibrate the garbled-circuit baseline once: run the real garbler over
   a few product rows and measure seconds per AND gate. *)
let calibrated_seconds_per_and = ref None

let seconds_per_and q =
  match !calibrated_seconds_per_and with
  | Some s -> s
  | None ->
      let s = Secyan_smcql.Cartesian_gc.calibrate ~seed q ~rows:32 in
      calibrated_seconds_per_and := Some s;
      line "(garbled-circuit baseline calibrated: %.3g s per AND gate, real half-gates garbling)" s;
      s

(* One figure point for a query expressed as a single Query.t. The secure
   run executes under a tracer so the record carries a per-phase
   breakdown; the tracer adds only span bookkeeping to the timed region. *)
let measure_simple_point ~section ~scale ~sf ~(make : Secyan_tpch.Datagen.dataset -> Secyan.Query.t) =
  let d = Secyan_tpch.Datagen.generate ~sf ~seed in
  let q = make d in
  let eff = Secyan_tpch.Queries.effective_input_bytes q in
  let ctx = Secyan_tpch.Queries.context ~seed () in
  let ((_, stats), root), secyan_s =
    time (fun () ->
        Trace.with_tracing ~name:q.Secyan.Query.name ctx (fun () ->
            Secyan.Secure_yannakakis.run ctx q))
  in
  let _, plain_s = time (fun () -> Secyan.Query.plaintext q) in
  let est =
    Secyan_smcql.Cartesian_gc.estimate ~seconds_per_and:(seconds_per_and q) ~kappa:128 q
  in
  let p =
    {
      scale;
      eff_kb = float_of_int eff /. 1024.;
      secyan_s;
      secyan_mb = Comm.total_megabytes stats.Secyan.Secure_yannakakis.tally;
      rounds = stats.Secyan.Secure_yannakakis.tally.Comm.rounds;
      gc_s = est.Secyan_smcql.Cartesian_gc.seconds;
      gc_mb = est.Secyan_smcql.Cartesian_gc.comm_bytes /. (1024. *. 1024.);
      plain_s;
      plain_mb = float_of_int eff /. (1024. *. 1024.);
    }
  in
  record ~section ~query:q.Secyan.Query.name ~sf p ~phases:(phase_breakdown root);
  p

(* Settle the heap between measurement points so that one point's garbage
   does not distort the next point's timing. *)
let settle () = Gc.compact ()

let figure_simple ~section ~title ~make () =
  let points =
    List.map
      (fun (scale, sf) ->
        settle ();
        measure_simple_point ~section ~scale ~sf ~make)
      Secyan_tpch.Datagen.presets
  in
  print_series title points

let figure2 () =
  figure_simple ~section:"figure2" ~title:"Figure 2: TPC-H Query 3"
    ~make:Secyan_tpch.Queries.q3 ()

let figure3 () =
  figure_simple ~section:"figure3" ~title:"Figure 3: TPC-H Query 10"
    ~make:Secyan_tpch.Queries.q10 ()

let figure4 () =
  figure_simple ~section:"figure4" ~title:"Figure 4: TPC-H Query 18"
    ~make:(fun d -> Secyan_tpch.Queries.q18 d)
    ()

(* Q8: two secure runs + a division circuit per year (query composition). *)
let figure5 () =
  let points =
    List.map
      (fun (scale, sf) ->
        settle ();
        let d = Secyan_tpch.Datagen.generate ~sf ~seed in
        let ctx = Secyan_tpch.Queries.context ~seed () in
        let (r, root), secyan_s =
          time (fun () ->
              Trace.with_tracing ~name:"q8" ctx (fun () -> Secyan_tpch.Queries.run_q8 ctx d))
        in
        let _, plain_s = time (fun () -> Secyan_tpch.Queries.q8_plaintext d) in
        let q_num = Secyan_tpch.Queries.q8_inner d ~numerator:true in
        let eff = 2 * Secyan_tpch.Queries.effective_input_bytes q_num in
        let est =
          Secyan_smcql.Cartesian_gc.estimate ~seconds_per_and:(seconds_per_and q_num)
            ~kappa:128 q_num
        in
        let p =
          {
            scale;
            eff_kb = float_of_int eff /. 1024.;
            secyan_s;
            secyan_mb = Comm.total_megabytes r.Secyan_tpch.Queries.tally;
            rounds = r.Secyan_tpch.Queries.tally.Comm.rounds;
            gc_s = 2. *. est.Secyan_smcql.Cartesian_gc.seconds;
            gc_mb = 2. *. est.Secyan_smcql.Cartesian_gc.comm_bytes /. (1024. *. 1024.);
            plain_s;
            plain_mb = float_of_int eff /. (1024. *. 1024.);
          }
        in
        record ~section:"figure5" ~query:"Q8" ~sf p ~phases:(phase_breakdown root);
        p)
      Secyan_tpch.Datagen.presets
  in
  print_series "Figure 5: TPC-H Query 8 (ratio of two sums, composed per section 7)" points

(* Q9: 25 per-nation decompositions x 2 aggregates. The protocol is
   oblivious, so every nation's run costs exactly the same: at the two
   smallest scales all 25 nations are actually executed; above that one
   nation is measured and scaled by 25. *)
let figure6 () =
  let points =
    List.map
      (fun (scale, sf) ->
        settle ();
        let d = Secyan_tpch.Datagen.generate ~sf ~seed in
        let measure_nations nations =
          let ctx = Secyan_tpch.Queries.context ~seed () in
          time (fun () ->
              Trace.with_tracing ~name:"q9" ctx (fun () ->
                  Secyan_tpch.Queries.run_q9 ~nations ctx d))
        in
        let factor, ((r, root), secyan_s) =
          if sf <= 1.5e-4 then
            (1., measure_nations (List.init Secyan_tpch.Datagen.n_nations Fun.id))
          else (float_of_int Secyan_tpch.Datagen.n_nations, measure_nations [ 2 ])
        in
        let _, plain_s = time (fun () -> Secyan_tpch.Queries.q9_plaintext d) in
        let q_one = Secyan_tpch.Queries.q9_inner d ~nationkey:2 ~volume:true in
        let eff = Secyan_tpch.Queries.effective_input_bytes q_one in
        let est =
          Secyan_smcql.Cartesian_gc.estimate ~seconds_per_and:(seconds_per_and q_one)
            ~kappa:128 q_one
        in
        let n_runs = 2. *. float_of_int Secyan_tpch.Datagen.n_nations in
        let p =
          {
            scale;
            eff_kb = float_of_int eff /. 1024.;
            secyan_s = secyan_s *. factor;
            secyan_mb = Comm.total_megabytes r.Secyan_tpch.Queries.tally *. factor;
            rounds = r.Secyan_tpch.Queries.tally.Comm.rounds;
            gc_s = n_runs *. est.Secyan_smcql.Cartesian_gc.seconds;
            gc_mb = n_runs *. est.Secyan_smcql.Cartesian_gc.comm_bytes /. (1024. *. 1024.);
            plain_s;
            plain_mb = float_of_int eff /. (1024. *. 1024.);
          }
        in
        record ~section:"figure6" ~query:"Q9" ~sf p ~phases:(phase_breakdown root);
        p)
      Secyan_tpch.Datagen.presets
  in
  print_series
    "Figure 6: TPC-H Query 9 (25 per-nation queries x 2 aggregates; one nation measured and x25 above scale s — oblivious runs cost the same per nation)"
    points

(* ------------------------------------------------------------------ *)
(* Ablations *)

(* §6.5 optimization: plain PSI with payloads (right annotations known to
   their owner) vs PSI with secret-shared payloads. *)
let ablation_psi () =
  hrule ();
  line
    "Ablation: oblivious semijoin via clear-payload PSI (6.5 optimization) vs secret-shared payloads (5.5)";
  hrule ();
  line "%-8s %14s %14s %12s %12s" "size" "clear-s" "shared-s" "clear-MB" "shared-MB";
  List.iter
    (fun n ->
      let make_rels ctx =
        let rows = List.init n (fun i -> ([| Value.Int i; Value.Int (i mod 97) |], 1L)) in
        let left = Relation.of_list ~name:"L" ~schema:(Schema.of_list [ "a"; "b" ]) rows in
        let right =
          Relation.of_list ~name:"R" ~schema:(Schema.of_list [ "b" ])
            (List.init 97 (fun i -> ([| Value.Int i |], Int64.of_int (i + 1))))
        in
        ( Secyan.Shared_relation.of_plain ctx ~owner:Party.Alice left,
          Secyan.Shared_relation.of_plain ctx ~owner:Party.Bob right )
      in
      let ring32 = Semiring.ring ~bits:32 in
      let run strip_clear =
        let ctx = Context.create ~seed () in
        let sl, sr = make_rels ctx in
        let sr =
          if strip_clear then
            Secyan.Shared_relation.of_shares ~owner:Party.Bob sr.Secyan.Shared_relation.rel
              sr.Secyan.Shared_relation.annots
          else sr
        in
        let before = Comm.tally ctx.Context.comm in
        let (_ : Secyan.Shared_relation.t), secs =
          time (fun () ->
              Secyan.Oblivious_semijoin.join_constrained ctx ring32 ~left:sl ~right:sr)
        in
        (secs, Comm.diff (Comm.tally ctx.Context.comm) before)
      in
      let clear_s, clear_t = run false in
      let shared_s, shared_t = run true in
      line "%-8d %14.3f %14.3f %12.2f %12.2f" n clear_s shared_s
        (Comm.total_megabytes clear_t) (Comm.total_megabytes shared_t))
    [ 200; 400; 800; 1600 ]

(* Validates the extrapolation model: the simulated backend must account
   exactly the same communication as real garbling, and their timing gap
   is reported. *)
let ablation_gc () =
  hrule ();
  line "Ablation: real half-gates garbling vs simulated backend (equal accounted cost)";
  hrule ();
  line "%-8s %10s %10s %12s %10s" "tuples" "real-s" "sim-s" "same-comm" "MB";
  List.iter
    (fun n ->
      let run backend =
        let ctx = Context.create ~gc_backend:backend ~seed () in
        let rows = List.init n (fun i -> ([| Value.Int i |], Int64.of_int (i mod 5))) in
        let r = Relation.of_list ~name:"R" ~schema:(Schema.of_list [ "g" ]) rows in
        let sr = Secyan.Shared_relation.of_plain ctx ~owner:Party.Alice r in
        let before = Comm.tally ctx.Context.comm in
        let (_ : Secyan.Shared_relation.t), secs =
          time (fun () ->
              Secyan.Oblivious_agg.aggregate ctx (Semiring.ring ~bits:32) sr
                ~attrs:(Schema.of_list [ "g" ]))
        in
        (secs, Comm.diff (Comm.tally ctx.Context.comm) before)
      in
      let real_s, real_t = run Context.Real in
      let sim_s, sim_t = run Context.Sim in
      line "%-8d %10.3f %10.3f %12b %10.2f" n real_s sim_s (Comm.equal real_t sim_t)
        (Comm.total_megabytes real_t))
    [ 64; 256; 1024 ]

(* Annotation ring width: the paper uses l = 32; our TPC-H queries need
   l = 52 for cent-precision sums. Multiplication circuits are O(l^2), so
   this measures what the wider ring costs. *)
let ablation_ring () =
  hrule ();
  line "Ablation: annotation ring width (Q3-shaped constrained join, 1000 tuples)";
  hrule ();
  line "%-6s %10s %10s" "bits" "secs" "MB";
  List.iter
    (fun bits ->
      let ctx = Context.create ~bits ~seed () in
      let semiring = Semiring.ring ~bits in
      let left =
        Relation.of_list ~name:"L" ~schema:(Schema.of_list [ "a"; "b" ])
          (List.init 1000 (fun i -> ([| Value.Int i; Value.Int (i mod 200) |], 1L)))
      in
      let right =
        Relation.of_list ~name:"R" ~schema:(Schema.of_list [ "b" ])
          (List.init 200 (fun i -> ([| Value.Int i |], Int64.of_int i)))
      in
      let sl = Secyan.Shared_relation.of_plain ctx ~owner:Party.Alice left in
      let sr = Secyan.Shared_relation.of_plain ctx ~owner:Party.Bob right in
      let before = Comm.tally ctx.Context.comm in
      let (_ : Secyan.Shared_relation.t), secs =
        time (fun () -> Secyan.Oblivious_semijoin.join_constrained ctx semiring ~left:sl ~right:sr)
      in
      line "%-6d %10.3f %10.2f" bits secs
        (Comm.total_megabytes (Comm.diff (Comm.tally ctx.Context.comm) before)))
    [ 16; 32; 48; 52; 60 ]

(* Where does Q3's cost go? Per-operator breakdown at scale m. *)
let breakdown () =
  hrule ();
  line "Cost breakdown: TPC-H Q3 at scale m, per protocol step";
  hrule ();
  let d = Secyan_tpch.Datagen.generate ~sf:(Secyan_tpch.Datagen.preset_sf "m") ~seed in
  let q = Secyan_tpch.Queries.q3 d in
  let ctx = Secyan_tpch.Queries.context ~seed () in
  let semiring = q.Secyan.Query.semiring in
  let get l = List.assoc l q.Secyan.Query.inputs in
  let step name f =
    let before = Comm.tally ctx.Context.comm in
    let r, secs = time f in
    line "  %-28s %8.3f s %10.2f MB" name secs
      (Comm.total_megabytes (Comm.diff (Comm.tally ctx.Context.comm) before));
    r
  in
  let sh l =
    Secyan.Shared_relation.of_plain ctx ~owner:(get l).Secyan.Query.owner
      (get l).Secyan.Query.relation
  in
  let customer = step "share customer annots" (fun () -> sh "customer") in
  let orders = step "share orders annots" (fun () -> sh "orders") in
  let lineitem = step "share lineitem annots" (fun () -> sh "lineitem") in
  let attrs l = Schema.of_list l in
  let agg_c =
    step "aggregate customer" (fun () ->
        Secyan.Oblivious_agg.aggregate ctx semiring customer ~attrs:(attrs [ "custkey" ]))
  in
  let orders =
    step "fold customer -> orders" (fun () ->
        Secyan.Oblivious_semijoin.join_constrained ctx semiring ~left:orders ~right:agg_c)
  in
  let agg_l =
    step "aggregate lineitem" (fun () ->
        Secyan.Oblivious_agg.aggregate ctx semiring lineitem ~attrs:(attrs [ "orderkey" ]))
  in
  let orders =
    step "fold lineitem -> orders" (fun () ->
        Secyan.Oblivious_semijoin.join_constrained ctx semiring ~left:orders ~right:agg_l)
  in
  let orders =
    step "root projection" (fun () ->
        Secyan.Oblivious_agg.aggregate ctx semiring orders
          ~attrs:(attrs [ "orderkey"; "o_orderdate"; "o_shippriority" ]))
  in
  let (_ : Secyan.Oblivious_join.t) =
    step "oblivious join (reveal)" (fun () -> Secyan.Oblivious_join.run ctx semiring [ orders ])
  in
  ()

(* Queries beyond the paper's evaluation: Q1 (single relation), Q4
   (EXISTS subquery), Q14 (ratio composition). *)
let extra_queries () =
  hrule ();
  line "Beyond the paper: extra TPC-H queries (scales xs..m)";
  hrule ();
  line "%-6s %-6s %10s %11s %9s" "query" "scale" "secyan-s" "secyan-MB" "plain-s";
  List.iter
    (fun (scale, sf) ->
      let d = Secyan_tpch.Datagen.generate ~sf ~seed in
      let simple name make =
        let q = make d in
        let ctx = Secyan_tpch.Queries.context ~seed () in
        let (_, stats), secs = time (fun () -> Secyan.Secure_yannakakis.run ctx q) in
        let _, plain_s = time (fun () -> Secyan.Query.plaintext q) in
        line "%-6s %-6s %10.3f %11.2f %9.4f" name scale secs
          (Comm.total_megabytes stats.Secyan.Secure_yannakakis.tally)
          plain_s
      in
      simple "Q1" Secyan_tpch.Extra_queries.q1;
      simple "Q4" (fun d -> Secyan_tpch.Extra_queries.q4 d);
      let ctx = Secyan_tpch.Queries.context ~seed () in
      let r, secs = time (fun () -> Secyan_tpch.Extra_queries.run_q14 ctx d) in
      let _, plain_s = time (fun () -> Secyan_tpch.Extra_queries.q14_plaintext d) in
      line "%-6s %-6s %10.3f %11.2f %9.4f" "Q14" scale secs
        (Comm.total_megabytes r.Secyan_tpch.Extra_queries.tally)
        plain_s)
    [ ("xs", 4e-5); ("s", 1.2e-4); ("m", 4e-4) ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenches of the primitives *)

let micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  hrule ();
  line "Microbenchmarks (Bechamel, monotonic clock)";
  hrule ();
  let ctx = Context.create ~seed () in
  let prg = Prg.create 1L in
  let elements = Array.init 256 (fun i -> Int64.of_int ((i * 7919) + 3)) in
  let perm = Prg.permutation prg 256 in
  let sha_input = Bytes.make 64 'x' in
  let circuit =
    let module Bb = Boolean_circuit.Builder in
    let b = Bb.create () in
    let x = Circuits.input_word b 32 and y = Circuits.input_word b 32 in
    let out = Circuits.mul_word b x y in
    Bb.finalize b ~outputs:(Circuits.materialize_word b 0 out)
  in
  let garble_prg = Prg.create 2L in
  let tests =
    [
      Test.make ~name:"share+reconstruct"
        (Staged.stage (fun () ->
             let s = Secret_share.share ctx ~owner:Party.Alice 12345L in
             ignore (Secret_share.reconstruct ctx s)));
      Test.make ~name:"sha256-64B"
        (Staged.stage (fun () -> ignore (Sha256.digest_bytes sha_input)));
      Test.make ~name:"cuckoo-build-256"
        (Staged.stage (fun () -> ignore (Cuckoo_hash.build prg elements)));
      Test.make ~name:"benes-route-256"
        (Staged.stage (fun () -> ignore (Permutation_network.build perm)));
      Test.make ~name:"garble-32b-mul-sha"
        (Staged.stage (fun () ->
             ignore (Garbling.garble ~kdf:Garbling.Sha256_kdf garble_prg circuit)));
      Test.make ~name:"garble-32b-mul-aes"
        (Staged.stage (fun () ->
             ignore (Garbling.garble ~kdf:Garbling.Aes128_kdf garble_prg circuit)));
      Test.make ~name:"eval-clear-32b-mul"
        (Staged.stage (fun () -> ignore (Boolean_circuit.eval circuit (Array.make 64 true))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> line "%-24s %12.1f ns/run" name est
          | Some _ | None -> line "%-24s (no estimate)" name)
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* GC engine performance: KDF microbenches, garbling throughput, and
   parallel batch wall-clock. Results go to BENCH_2.json (EXPERIMENTS.md
   documents the schema). [--domains N] sets the largest pool measured. *)

let requested_domains = ref 1

let bench2_records : Json.t list ref = ref []

let write_bench2_json () =
  let path = "BENCH_2.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("section", Json.Str "gc-perf");
        ("seed", Json.Str (Int64.to_string seed));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("records", Json.List (List.rev !bench2_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench2_records)

(* Per-domain contention timelines and metrics overhead: records go to
   BENCH_6.json (EXPERIMENTS.md documents the schema). The timelines are
   the instrumented view of ROADMAP item 1 — where the wall-clock goes
   (busy vs queue-wait vs lock-wait) as the pool grows. *)

let bench6_records : Json.t list ref = ref []

let write_bench6_json () =
  let path = "BENCH_6.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("section", Json.Str "gc-perf");
        ("seed", Json.Str (Int64.to_string seed));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("records", Json.List (List.rev !bench6_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench6_records)

(* Allocation-free kernel proof and the domain-scaling sweep: records go
   to BENCH_7.json (EXPERIMENTS.md documents the schema). The cross-
   machine CI gates are the exact booleans of the scaling-summary record
   ([alloc_reduction_ok], [scaling_ok], [identical_at_all_pool_sizes]);
   words-per-gate and the reduction factor are machine-absolute
   diagnostics (DESIGN.md §14). *)

let bench7_records : Json.t list ref = ref []

let write_bench7_json () =
  let path = "BENCH_7.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("section", Json.Str "gc-perf");
        ("seed", Json.Str (Int64.to_string seed));
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("records", Json.List (List.rev !bench7_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench7_records)

(* Bechamel OLS estimate for one run of [f], in nanoseconds. *)
let ns_per_run name f =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let analysis = Analyze.all ols Instance.monotonic_clock results in
  let est = ref nan in
  Hashtbl.iter
    (fun _ r -> match Analyze.OLS.estimates r with Some [ e ] -> est := e | _ -> ())
    analysis;
  !est

let gc_perf () =
  hrule ();
  line "GC engine performance (label hashes, garbling throughput, parallel batches)";
  hrule ();
  (* 1. per-label KDF cost: the acceptance criterion is AES < SHA-256 *)
  let prg = Prg.create 3L in
  let label = Garbling.Label.random prg in
  let sha_ns = ns_per_run "label-hash-sha256" (fun () ->
      ignore (Garbling.Label.hash label ~tweak:42L)) in
  let aes_ns = ns_per_run "label-hash-aes128" (fun () ->
      ignore (Garbling.Label.hash_aes label ~tweak:42L)) in
  line "%-24s %12.1f ns/op" "label-hash-sha256" sha_ns;
  line "%-24s %12.1f ns/op  (%.2fx faster)" "label-hash-aes128" aes_ns (sha_ns /. aes_ns);
  List.iter
    (fun (kdf, ns) ->
      bench2_records :=
        Json.Obj
          [
            ("kind", Json.Str "label-hash"); ("kdf", Json.Str kdf);
            ("ns_per_op", Json.Float ns);
          ]
        :: !bench2_records)
    [ ("sha256", sha_ns); ("aes128", aes_ns) ];
  (* 2. whole-circuit garbling throughput in AND gates per second *)
  let circuit =
    let module Bb = Boolean_circuit.Builder in
    let b = Bb.create () in
    let x = Circuits.input_word b 32 and y = Circuits.input_word b 32 in
    let out = Circuits.mul_word b x y in
    Bb.finalize b ~outputs:(Circuits.materialize_word b 0 out)
  in
  let ands = Boolean_circuit.and_count circuit in
  let garble_prg = Prg.create 2L in
  List.iter
    (fun (name, kdf) ->
      let ns = ns_per_run ("garble-" ^ name) (fun () ->
          ignore (Garbling.garble ~kdf garble_prg circuit)) in
      let gates_per_s = float_of_int ands /. (ns *. 1e-9) in
      line "%-24s %12.1f ns/circuit  %10.0f AND gates/s" ("garble-32b-mul-" ^ name) ns
        gates_per_s;
      bench2_records :=
        Json.Obj
          [
            ("kind", Json.Str "garble-throughput"); ("kdf", Json.Str name);
            ("and_gates", Json.Int ands); ("ns_per_circuit", Json.Float ns);
            ("and_gates_per_s", Json.Float gates_per_s);
          ]
        :: !bench2_records)
    [ ("sha256", Garbling.Sha256_kdf); ("aes128", Garbling.Aes128_kdf) ];
  (* 3. batch wall-clock across pool sizes, with a determinism cross-check *)
  let items = 48 in
  let batch_inputs () =
    let inp = Prg.create 7L in
    Array.init items (fun _ ->
        [
          Gc_protocol.Priv { owner = Party.Alice; value = Prg.bits inp 16; bits = 32 };
          Gc_protocol.Priv { owner = Party.Bob; value = Prg.bits inp 16; bits = 32 };
        ])
  in
  let build b words = [ Circuits.mul_word b words.(0) words.(1) ] in
  let batch domains =
    let ctx = Context.create ~gc_backend:Context.Real ~domains ~seed () in
    let shares, secs =
      time (fun () -> Gc_protocol.eval_to_shares_batch ctx ~items:(batch_inputs ()) ~build)
    in
    Context.shutdown_pool ctx;
    (shares, secs)
  in
  let pool_sizes = List.sort_uniq compare [ 1; 2; max 1 !requested_domains ] in
  let baseline, base_secs = batch 1 in
  List.iter
    (fun domains ->
      let shares, secs = if domains = 1 then (baseline, base_secs) else batch domains in
      let identical = shares = baseline in
      line "%-24s %12.3f ms  (%d items, speedup %.2fx, identical %b)"
        (Printf.sprintf "batch-garble-%dd" domains)
        (secs *. 1e3) items (base_secs /. secs) identical;
      if not identical then line "  !! parallel batch diverged from sequential";
      bench2_records :=
        Json.Obj
          [
            ("kind", Json.Str "batch-wallclock"); ("domains", Json.Int domains);
            ("items", Json.Int items); ("and_gates", Json.Int (ands * items));
            ("seconds", Json.Float secs);
            ("and_gates_per_s", Json.Float (float_of_int (ands * items) /. secs));
            ("speedup_vs_domains1", Json.Float (base_secs /. secs));
            ("identical_to_sequential", Json.Bool identical);
          ]
        :: !bench2_records)
    pool_sizes;
  (* 4. per-domain contention timelines: where each participant's
     wall-clock goes (busy vs queue-wait vs lock-wait) as the pool grows
     — the instrumented view of the ROADMAP item-1 regression. *)
  let was_enabled = Secyan_metrics.enabled () in
  Secyan_metrics.set_enabled true;
  let timeline_sizes = List.sort_uniq compare [ 1; 2; 4; max 1 !requested_domains ] in
  List.iter
    (fun domains ->
      settle ();
      let ctx = Context.create ~gc_backend:Context.Real ~domains ~seed () in
      let _, secs =
        time (fun () -> Gc_protocol.eval_to_shares_batch ctx ~items:(batch_inputs ()) ~build)
      in
      let tls =
        match Context.pool_opt ctx with
        | Some pool -> Domain_pool.timelines pool
        | None -> []
      in
      Context.shutdown_pool ctx;
      let sum f = List.fold_left (fun acc tl -> acc +. f tl) 0. tls in
      let wall = sum (fun tl -> tl.Domain_pool.wall_ns) in
      let frac f = if wall > 0. then sum f /. wall else 0. in
      let busy = frac (fun tl -> tl.Domain_pool.busy_ns) in
      let queue = frac (fun tl -> tl.Domain_pool.queue_wait_ns) in
      let lock = frac (fun tl -> tl.Domain_pool.lock_wait_ns) in
      line "%-24s %12.3f ms  busy %5.1f%%  queue-wait %5.1f%%  lock-wait %5.1f%%"
        (Printf.sprintf "timeline-%dd" domains)
        (secs *. 1e3) (100. *. busy) (100. *. queue) (100. *. lock);
      bench6_records :=
        Json.Obj
          [
            ("kind", Json.Str "domain-timeline"); ("domains", Json.Int domains);
            ("items", Json.Int items); ("seconds", Json.Float secs);
            ("busy_frac", Json.Float busy);
            ("queue_wait_frac", Json.Float queue);
            ("lock_wait_frac", Json.Float lock);
            ("timelines", Json.List (List.map Profile.timeline_json tls));
          ]
        :: !bench6_records)
    timeline_sizes;
  (* 5. metrics overhead on a full protocol run: the registry must stay
     within single-digit percent of a metrics-off run (DESIGN.md §13's
     budget; the acceptance bar is <= 3%). Best-of-reps on both sides to
     suppress scheduler noise. *)
  let sf = Secyan_tpch.Datagen.preset_sf "xs" in
  let d = Secyan_tpch.Datagen.generate ~sf ~seed in
  let run_secs () =
    settle ();
    let ctx = Secyan_tpch.Queries.context ~seed () in
    let q = Secyan_tpch.Queries.q3 d in
    let _, secs = time (fun () -> Secyan.Secure_yannakakis.run ctx q) in
    Context.shutdown_pool ctx;
    secs
  in
  let reps = 5 in
  let best f = List.fold_left (fun acc _ -> Float.min acc (f ())) infinity (List.init reps Fun.id) in
  Secyan_metrics.set_enabled false;
  let off_secs = best run_secs in
  Secyan_metrics.set_enabled true;
  let on_secs = best run_secs in
  Secyan_metrics.set_enabled was_enabled;
  let overhead_pct = 100. *. (on_secs -. off_secs) /. off_secs in
  line "%-24s off %.3f ms  on %.3f ms  overhead %.2f%%" "metrics-overhead-q3-xs"
    (off_secs *. 1e3) (on_secs *. 1e3) overhead_pct;
  bench6_records :=
    Json.Obj
      [
        ("kind", Json.Str "metrics-overhead"); ("query", Json.Str "Q3");
        ("scale", Json.Str "xs"); ("reps", Json.Int reps);
        ("off_seconds", Json.Float off_secs); ("on_seconds", Json.Float on_secs);
        ("overhead_pct", Json.Float overhead_pct);
      ]
    :: !bench6_records;
  (* 6. allocation-free kernels (DESIGN.md §14): words allocated per AND
     gate by the boxed reference vs the unboxed arena implementation, the
     batch engine's steady-state per-item allocation (read back through
     the [secyan_gc_item_*_words] registry histograms), and the domains
     1/2/4/8 scaling sweep. Records go to BENCH_7.json; CI gates on the
     scaling-summary booleans, which are machine-independent. *)
  Secyan_metrics.set_enabled false;
  let n_inputs = circuit.Boolean_circuit.n_inputs in
  let input_bit i = i land 1 = 1 in
  let alloc_reps = 32 in
  let alloc_per_gate f =
    f ();
    (* warmed up: arenas grown, lazy state forced. [Gc.minor_words] (not
       [quick_stat], which only advances at GC points) so sub-minor-heap
       allocation volumes still resolve. *)
    let minor0 = Gc.minor_words () in
    let major0 = (Gc.quick_stat ()).Gc.major_words in
    for _ = 1 to alloc_reps do f () done;
    let per w0 w1 = (w1 -. w0) /. float_of_int (alloc_reps * ands) in
    ( per minor0 (Gc.minor_words ()),
      per major0 (Gc.quick_stat ()).Gc.major_words )
  in
  let boxed_prg = Prg.create 9L in
  let boxed () =
    let g = Garbling_reference.garble boxed_prg circuit in
    let labels =
      Array.init n_inputs (fun i -> Garbling_reference.encode_input g i (input_bit i))
    in
    ignore (Garbling_reference.eval_labels g labels : Garbling.Label.t array)
  in
  let arena = Garbling.Arena.create () in
  let unboxed_prg = Prg.create 9L in
  let unboxed () =
    let g = Garbling.garble ~arena unboxed_prg circuit in
    ignore (Garbling.eval_colors ~arena g input_bit : Bytes.t)
  in
  let record_alloc impl (minor, major) =
    line "%-24s %12.2f minor words/AND  %10.4f major words/AND" ("alloc-" ^ impl) minor
      major;
    bench7_records :=
      Json.Obj
        [
          ("kind", Json.Str "alloc-per-gate"); ("impl", Json.Str impl);
          ("and_gates", Json.Int ands); ("reps", Json.Int alloc_reps);
          ("minor_words_per_gate", Json.Float minor);
          ("major_words_per_gate", Json.Float major);
        ]
      :: !bench7_records
  in
  let ((boxed_minor, _) as boxed_alloc) = alloc_per_gate boxed in
  record_alloc "boxed" boxed_alloc;
  let ((unboxed_minor, _) as unboxed_alloc) = alloc_per_gate unboxed in
  record_alloc "unboxed" unboxed_alloc;
  let alloc_reduction = boxed_minor /. Float.max unboxed_minor 1e-9 in
  line "%-24s %12.1fx fewer minor words/AND (gate: >= 10x)" "alloc-reduction"
    alloc_reduction;
  (* steady-state batch-engine allocation: the second batch on a context
     runs on recycled item contexts and warmed arenas *)
  Secyan_metrics.set_enabled true;
  let alloc_ctx = Context.create ~gc_backend:Context.Real ~domains:1 ~seed () in
  ignore (Gc_protocol.eval_to_shares_batch alloc_ctx ~items:(batch_inputs ()) ~build);
  Secyan_metrics.reset ();
  ignore (Gc_protocol.eval_to_shares_batch alloc_ctx ~items:(batch_inputs ()) ~build);
  Context.shutdown_pool alloc_ctx;
  let hist_mean name =
    match
      List.find_opt
        (fun (s : Secyan_metrics.sample) -> s.Secyan_metrics.name = name)
        (Secyan_metrics.snapshot ())
    with
    | Some { Secyan_metrics.value = Secyan_metrics.Histogram h; _ }
      when h.Secyan_metrics.count > 0 ->
        h.Secyan_metrics.sum /. float_of_int h.Secyan_metrics.count
    | _ -> 0.
  in
  let item_minor = hist_mean "secyan_gc_item_minor_words" in
  let item_major = hist_mean "secyan_gc_item_major_words" in
  line "%-24s %12.0f minor words/item  (%.2f per AND gate)" "batch-alloc-steady"
    item_minor
    (item_minor /. float_of_int ands);
  bench7_records :=
    Json.Obj
      [
        ("kind", Json.Str "batch-alloc"); ("domains", Json.Int 1);
        ("items", Json.Int items);
        ("minor_words_per_item", Json.Float item_minor);
        ("minor_words_per_gate", Json.Float (item_minor /. float_of_int ands));
        ("major_words_per_item", Json.Float item_major);
      ]
    :: !bench7_records;
  (* the scaling sweep: always domains 1/2/4/8 (plus --domains if larger)
     so regenerated files match record-for-record on any machine;
     wall-clock scaling is only asserted for pool sizes the host can
     actually run in parallel *)
  Secyan_metrics.set_enabled false;
  let sweep_sizes = List.sort_uniq compare [ 1; 2; 4; 8; max 1 !requested_domains ] in
  let sweep_reps = 3 in
  let sweep domains =
    let shares = ref [||] and best = ref infinity in
    for _ = 1 to sweep_reps do
      settle ();
      let s, secs = batch domains in
      shares := s;
      if secs < !best then best := secs
    done;
    (!shares, !best)
  in
  let sweep_base, sweep_base_secs = sweep 1 in
  let sweep_results =
    List.map
      (fun domains ->
        let shares, secs =
          if domains = 1 then (sweep_base, sweep_base_secs) else sweep domains
        in
        let identical = shares = sweep_base in
        let speedup = sweep_base_secs /. secs in
        line "%-24s %12.3f ms  (speedup %.2fx, identical %b)"
          (Printf.sprintf "sweep-%dd" domains)
          (secs *. 1e3) speedup identical;
        if not identical then line "  !! parallel batch diverged from sequential";
        bench7_records :=
          Json.Obj
            [
              ("kind", Json.Str "domain-sweep"); ("domains", Json.Int domains);
              ("items", Json.Int items); ("and_gates", Json.Int (ands * items));
              ("seconds", Json.Float secs);
              ("and_gates_per_s", Json.Float (float_of_int (ands * items) /. secs));
              ("speedup_vs_domains1", Json.Float speedup);
              ("identical_to_sequential", Json.Bool identical);
            ]
          :: !bench7_records;
        (domains, speedup, identical))
      sweep_sizes
  in
  let cores = Domain.recommended_domain_count () in
  let gated = List.filter (fun (d, _, _) -> d <= cores) sweep_results in
  let rec monotone = function
    | (_, s1, _) :: ((_, s2, _) :: _ as rest) -> s2 >= s1 -. 0.1 && monotone rest
    | _ -> true
  in
  let all_identical = List.for_all (fun (_, _, id) -> id) sweep_results in
  let at2_ok = cores < 2 || List.for_all (fun (d, s, _) -> d <> 2 || s >= 0.9) gated in
  let scaling_ok = all_identical && at2_ok && monotone gated in
  let alloc_reduction_ok = alloc_reduction >= 10. in
  line "%-24s reduction %.0fx (ok %b)  scaling ok %b (asserted on %d of %d pool sizes; %d cores)"
    "scaling-summary" alloc_reduction alloc_reduction_ok scaling_ok (List.length gated)
    (List.length sweep_results) cores;
  bench7_records :=
    Json.Obj
      [
        ("kind", Json.Str "scaling-summary"); ("items", Json.Int items);
        ("alloc_reduction", Json.Float alloc_reduction);
        ("alloc_reduction_ok", Json.Bool alloc_reduction_ok);
        ("scaling_ok", Json.Bool scaling_ok);
        ("identical_at_all_pool_sizes", Json.Bool all_identical);
      ]
    :: !bench7_records;
  Secyan_metrics.set_enabled was_enabled

(* ------------------------------------------------------------------ *)
(* Checkpoint overhead: wall-clock and bytes-written delta of a fully
   checkpointed run (a snapshot at every phase/operator boundary) vs a
   plain run, q3/q10 at scale xs. Results go to BENCH_4.json
   (EXPERIMENTS.md documents the schema). *)

let bench4_records : Json.t list ref = ref []

let write_bench4_json () =
  let path = "BENCH_4.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("section", Json.Str "checkpoint-overhead");
        ("seed", Json.Str (Int64.to_string seed));
        ("records", Json.List (List.rev !bench4_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench4_records)

let rm_rf_flat dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let checkpoint_overhead () =
  hrule ();
  line "Checkpoint overhead: checkpointed vs plain runs at scale xs";
  hrule ();
  let sf = 4e-5 (* xs *) in
  let reps = 3 in
  let measure make =
    let d = Secyan_tpch.Datagen.generate ~sf ~seed in
    let q = make d in
    (* one timed run; [with_sink] decides whether snapshots are written *)
    let run_once ~with_sink =
      settle ();
      let dir = if with_sink then Some (Filename.temp_dir "secyan-bench-ck" "") else None in
      let checkpoint = Option.map (fun dir -> Checkpoint.sink ~dir ()) dir in
      let ctx = Secyan_tpch.Queries.context ?checkpoint ~seed () in
      let (_, stats), secs = time (fun () -> Secyan.Secure_yannakakis.run ctx q) in
      let written, bytes =
        match checkpoint with
        | Some s -> (s.Checkpoint.written, s.Checkpoint.bytes_written)
        | None -> (0, 0)
      in
      Option.iter rm_rf_flat dir;
      (stats.Secyan.Secure_yannakakis.tally, secs, written, bytes)
    in
    (* min over reps: the delta of interest is systematic, not noise *)
    let best with_sink =
      List.init reps (fun _ -> run_once ~with_sink)
      |> List.fold_left (fun acc ((_, s, _, _) as r) ->
             match acc with
             | Some ((_, s0, _, _) as r0) -> Some (if s < s0 then r else r0)
             | None -> Some r)
           None
      |> Option.get
    in
    let plain_tally, plain_s, _, _ = best false in
    let ck_tally, ck_s, written, bytes = best true in
    (* checkpointing sits below protocol accounting: tallies must match *)
    let identical = Comm.equal plain_tally ck_tally in
    let overhead_s = ck_s -. plain_s in
    line "%-6s plain %8.3f s   checkpointed %8.3f s   delta %+8.3f s (%+6.2f%%)   %d snapshots, %d bytes%s"
      q.Secyan.Query.name plain_s ck_s overhead_s
      (100. *. overhead_s /. plain_s)
      written bytes
      (if identical then "" else "   !! tally diverged");
    bench4_records :=
      Json.Obj
        [
          ("query", Json.Str q.Secyan.Query.name);
          ("scale", Json.Str "xs");
          ("sf", Json.Float sf);
          ("reps", Json.Int reps);
          ("plain_seconds", Json.Float plain_s);
          ("checkpointed_seconds", Json.Float ck_s);
          ("overhead_seconds", Json.Float overhead_s);
          ("overhead_pct", Json.Float (100. *. overhead_s /. plain_s));
          ("checkpoints_written", Json.Int written);
          ("checkpoint_bytes", Json.Int bytes);
          ("tally_identical", Json.Bool identical);
        ]
      :: !bench4_records
  in
  List.iter measure [ Secyan_tpch.Queries.q3; Secyan_tpch.Queries.q10 ]

(* ------------------------------------------------------------------ *)
(* Fuzz campaign throughput: instances per second through the
   differential oracle, with and without the obliviousness audit, plus
   the shrinker's cost on a synthetic failure. Results go to BENCH_5.json
   (EXPERIMENTS.md documents the schema). *)

let bench5_records : Json.t list ref = ref []

let write_bench5_json () =
  let path = "BENCH_5.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("section", Json.Str "fuzz-perf");
        ("seed", Json.Str (Int64.to_string seed));
        ("records", Json.List (List.rev !bench5_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench5_records)

let fuzz_perf () =
  hrule ();
  line "Fuzz throughput: differential oracle and obliviousness audit";
  hrule ();
  let campaign ~audit ~cases =
    settle ();
    let stats = Secyan_fuzz.Runner.run ~audit ~seed ~cases () in
    let per_s = float_of_int stats.Secyan_fuzz.Runner.cases /. stats.Secyan_fuzz.Runner.seconds in
    line "%-28s %4d cases in %7.2f s  (%6.1f instances/s, %d gc-checked, %d audited, %d failures)"
      (if audit then "oracle+audit" else "oracle-only")
      stats.Secyan_fuzz.Runner.cases stats.Secyan_fuzz.Runner.seconds per_s
      stats.Secyan_fuzz.Runner.gc_checked stats.Secyan_fuzz.Runner.audits_run
      (List.length stats.Secyan_fuzz.Runner.failures);
    bench5_records :=
      Json.Obj
        [
          ("kind", Json.Str "campaign");
          ("audit", Json.Bool audit);
          ("cases", Json.Int stats.Secyan_fuzz.Runner.cases);
          ("gc_checked", Json.Int stats.Secyan_fuzz.Runner.gc_checked);
          ("audits_run", Json.Int stats.Secyan_fuzz.Runner.audits_run);
          ("failures", Json.Int (List.length stats.Secyan_fuzz.Runner.failures));
          ("seconds", Json.Float stats.Secyan_fuzz.Runner.seconds);
          ("instances_per_s", Json.Float per_s);
        ]
      :: !bench5_records
  in
  campaign ~audit:false ~cases:100;
  campaign ~audit:true ~cases:100;
  (* shrinker cost on a synthetic always-failing predicate: pure
     generator + oracle-replay work, no protocol divergence needed *)
  settle ();
  Secyan_relational.Value.reset_dummies ();
  let t = Secyan_fuzz.Gen.generate ~seed ~case:0 in
  let rows (i : Secyan_fuzz.Gen.instance) =
    List.fold_left
      (fun acc (_, (inp : Secyan.Query.input)) ->
        acc + Relation.cardinality inp.Secyan.Query.relation)
      0 i.Secyan_fuzz.Gen.query.Secyan.Query.inputs
  in
  let r, secs =
    time (fun () -> Secyan_fuzz.Shrink.minimize ~failing:(fun i -> rows i > 0) t)
  in
  line "%-28s %d -> %d rows in %d steps (%.3f s)" "shrink (synthetic)" (rows t)
    (rows r.Secyan_fuzz.Shrink.instance) r.Secyan_fuzz.Shrink.steps secs;
  bench5_records :=
    Json.Obj
      [
        ("kind", Json.Str "shrink");
        ("rows_before", Json.Int (rows t));
        ("rows_after", Json.Int (rows r.Secyan_fuzz.Shrink.instance));
        ("steps", Json.Int r.Secyan_fuzz.Shrink.steps);
        ("seconds", Json.Float secs);
      ]
    :: !bench5_records

(* ------------------------------------------------------------------ *)
(* Oblivious sort / top-k perf (DESIGN.md §17): comparator schedule size
   vs the closed form, AND gates, communication, rounds, and wall-clock
   of the bitonic sort as n grows, plus a domains sweep at fixed n.
   Results go to BENCH_10.json (EXPERIMENTS.md documents the schema). *)

let bench10_records : Json.t list ref = ref []

let write_bench10_json () =
  let path = "BENCH_10.json" in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "secyan-bench");
        ("seed", Json.Str (Int64.to_string seed));
        ("records", Json.List (List.rev !bench10_records));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  line "wrote %s (%d records)" path (List.length !bench10_records)

let sort_perf () =
  hrule ();
  line "oblivious sort / top-k: bitonic schedule cost vs n (DESIGN.md section 17)";
  hrule ();
  let key_bits = 16 and idx_bits = 16 in
  (* synthetic rows shaped like the engine's order phase: one private
     rank key, a private row-index payload and a shared annotation *)
  let make_rows ctx n =
    let prg = Prg.create (Int64.of_int (0x5017 + n)) in
    Array.init n (fun i ->
        let key = Int64.logand (Prg.next_int64 prg) 0xFFFFL in
        {
          Oblivious_sort.valid =
            Gc_protocol.Priv { owner = Party.Alice; value = 1L; bits = 1 };
          valid_if_nonzero = None;
          keys =
            [
              {
                Oblivious_sort.word =
                  {
                    Oblivious_sort.input =
                      Gc_protocol.Priv { owner = Party.Alice; value = key; bits = key_bits };
                    width = key_bits;
                  };
                descending = true;
                signed = false;
              };
            ];
          payload =
            [
              {
                Oblivious_sort.input =
                  Gc_protocol.Priv
                    { owner = Party.Alice; value = Int64.of_int i; bits = idx_bits };
                width = idx_bits;
              };
              {
                Oblivious_sort.input =
                  Gc_protocol.Shared
                    (Secret_share.of_public ctx (Int64.of_int (i * 7)));
                width = 32;
              };
            ];
        })
  in
  let and_gates ctx =
    (Context.counter_totals ctx).(Trace_sink.counter_index Trace_sink.And_gates)
  in
  let run ~domains ~k n =
    settle ();
    let ctx = Context.create ~bits:32 ~domains ~seed () in
    let rows = make_rows ctx n in
    let before_tally = Comm.tally ctx.Context.comm in
    let before_ands = and_gates ctx in
    let revealed, secs = time (fun () -> Oblivious_sort.top_k_reveal ctx ~k ~to_:Party.Alice rows) in
    let after_tally = Comm.tally ctx.Context.comm in
    let ands = and_gates ctx - before_ands in
    let bits =
      after_tally.Comm.alice_to_bob_bits - before_tally.Comm.alice_to_bob_bits
      + after_tally.Comm.bob_to_alice_bits - before_tally.Comm.bob_to_alice_bits
    in
    let rounds = after_tally.Comm.rounds - before_tally.Comm.rounds in
    Context.shutdown_pool ctx;
    (revealed, ands, bits, rounds, secs)
  in
  line "%-6s %7s %12s %12s %10s %7s %9s" "n" "padded" "comparators" "AND-gates"
    "comm-MB" "rounds" "ms";
  let sizes = [ 16; 32; 64; 128; 256 ] in
  List.iter
    (fun n ->
      let net = Sorting_network.build n in
      let comparators = Sorting_network.comparator_count net in
      (* the closed form the builder enforces; recheck it here so the
         regression gate sees any drift *)
      let closed_form_ok = comparators = Sorting_network.expected_count n in
      let k = min n 10 in
      let revealed, ands, bits, rounds, secs = run ~domains:1 ~k n in
      (* sanity: the revealed top-k indices really are key-sorted *)
      let sorted_ok = Array.for_all (fun (invalid, _) -> not invalid) revealed in
      let mb = float_of_int bits /. 8. /. 1024. /. 1024. in
      line "%-6d %7d %12d %12d %10.2f %7d %9.1f%s" n net.Sorting_network.padded
        comparators ands mb rounds (secs *. 1e3)
        (if closed_form_ok && sorted_ok then "" else "  !! check failed");
      bench10_records :=
        Json.Obj
          [
            ("kind", Json.Str "sort-scaling"); ("n", Json.Int n);
            ("padded", Json.Int net.Sorting_network.padded);
            ("k", Json.Int k);
            ("comparators", Json.Int comparators);
            ("passes", Json.Int (Sorting_network.pass_count net));
            ("closed_form_ok", Json.Bool closed_form_ok);
            ("top_k_all_valid", Json.Bool sorted_ok);
            ("and_gates", Json.Int ands);
            ("comm_bits", Json.Int bits);
            ("rounds", Json.Int rounds);
            ("seconds", Json.Float secs);
          ]
        :: !bench10_records)
    sizes;
  (* domains sweep at fixed n: identical reveal, wall-clock speedup *)
  let sweep_n = 128 in
  let sweep_sizes = List.sort_uniq compare [ 1; 2; 4; max 1 !requested_domains ] in
  let base = ref None in
  List.iter
    (fun domains ->
      let revealed, ands, bits, rounds, secs = run ~domains ~k:10 sweep_n in
      let base_revealed, base_secs =
        match !base with
        | None ->
            base := Some (revealed, secs);
            (revealed, secs)
        | Some b -> b
      in
      let identical = revealed = base_revealed in
      let speedup = base_secs /. secs in
      line "%-24s %12.3f ms  (speedup %.2fx, identical %b)"
        (Printf.sprintf "sort-sweep-%dd" domains)
        (secs *. 1e3) speedup identical;
      bench10_records :=
        Json.Obj
          [
            ("kind", Json.Str "sort-domain-sweep"); ("n", Json.Int sweep_n);
            ("domains", Json.Int domains);
            ("and_gates", Json.Int ands);
            ("comm_bits", Json.Int bits);
            ("rounds", Json.Int rounds);
            ("seconds", Json.Float secs);
            ("speedup_vs_domains1", Json.Float speedup);
            ("identical_to_sequential", Json.Bool identical);
          ]
        :: !bench10_records)
    sweep_sizes

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("figure2", figure2); ("figure3", figure3); ("figure4", figure4);
    ("figure5", figure5); ("figure6", figure6);
    ("ablation-psi", ablation_psi); ("ablation-gc", ablation_gc);
    ("ablation-ring", ablation_ring); ("breakdown", breakdown);
    ("extra-queries", extra_queries); ("micro", micro); ("gc-perf", gc_perf);
    ("checkpoint-overhead", checkpoint_overhead); ("fuzz-perf", fuzz_perf);
    ("sort-perf", sort_perf);
  ]

(* [bench diff BASE.json NEW.json [--tolerance T] [--strict]]: the BENCH
   regression gate. Exit 1 on regression, 2 on usage/parse errors. *)
let diff_main args =
  let usage () =
    prerr_endline "usage: bench diff BASE.json NEW.json [--tolerance T] [--strict]";
    exit 2
  in
  let tolerance = ref 0.15 and strict = ref false and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> tolerance := t
        | _ -> usage ());
        parse rest
    | arg :: rest when String.length arg > 12 && String.sub arg 0 12 = "--tolerance=" -> (
        match float_of_string_opt (String.sub arg 12 (String.length arg - 12)) with
        | Some t when t >= 0. ->
            tolerance := t;
            parse rest
        | _ -> usage ())
    | arg :: _ when String.length arg >= 2 && String.sub arg 0 2 = "--" -> usage ()
    | file :: rest ->
        files := file :: !files;
        parse rest
  in
  parse args;
  match List.rev !files with
  | [ base; next ] -> (
      match Bench_diff.compare_files ~tolerance:!tolerance ~strict:!strict ~base ~next () with
      | Error e ->
          Printf.eprintf "bench diff: %s\n" e;
          exit 2
      | Ok report ->
          Bench_diff.pp_report Format.std_formatter report;
          Format.pp_print_flush Format.std_formatter ();
          exit (if Bench_diff.regressions report = [] then 0 else 1))
  | _ -> usage ()

let () =
  (match Array.to_list Sys.argv with
  | _ :: "diff" :: rest -> diff_main rest
  | _ -> ());
  (* consume [--domains N] (or --domains=N) before section selection *)
  let rec strip_domains = function
    | [] -> []
    | "--domains" :: n :: rest ->
        requested_domains := int_of_string n;
        strip_domains rest
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--domains=" ->
        requested_domains :=
          int_of_string (String.sub arg 10 (String.length arg - 10));
        strip_domains rest
    | arg :: rest -> arg :: strip_domains rest
  in
  let requested =
    match strip_domains (List.tl (Array.to_list Sys.argv)) with
    | [] -> [ "all" ]
    | args -> args
  in
  let sections =
    List.concat_map
      (fun name ->
        match name with
        | "all" -> List.map fst all_sections
        | "figures" -> [ "figure2"; "figure3"; "figure4"; "figure5"; "figure6" ]
        | "ablations" -> [ "ablation-psi"; "ablation-gc"; "ablation-ring" ]
        | other -> [ other ])
      requested
  in
  (* a roomy minor heap: the oblivious operators allocate heavily *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  line "secure-yannakakis benchmark harness (seed %Ld)" seed;
  line "paper scales 1/3/10/33/100 MB map to presets xs/s/m/l/xl (DESIGN.md section 4)";
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f -> f ()
      | None -> line "unknown section %s" name)
    sections;
  if !bench_records <> [] then write_bench_json ();
  if !bench2_records <> [] then write_bench2_json ();
  if !bench4_records <> [] then write_bench4_json ();
  if !bench5_records <> [] then write_bench5_json ();
  if !bench6_records <> [] then write_bench6_json ();
  if !bench7_records <> [] then write_bench7_json ();
  if !bench10_records <> [] then write_bench10_json ()
